"""Command-line interface: run scenarios and detection experiments.

Usage examples::

    # Simulate one scenario and print trace statistics
    python -m repro simulate --protocol aodv --transport udp --duration 600

    # Full detection experiment, 4 worker processes, persistent cache
    python -m repro detect --protocol aodv --transport udp \
        --classifier c45 --duration 1000 --jobs 4

    # Online detection: train offline, stream a live attack scenario
    python -m repro stream --protocol aodv --transport udp --duration 1000

    # Durable streaming: checkpoint as the run goes, resume after a kill
    python -m repro stream --checkpoint run.ckpt --checkpoint-every 8
    python -m repro stream --resume run.ckpt --checkpoint run.ckpt

    # Degraded input: quarantine bad rows instead of trusting them
    python -m repro fleet --row-policy quarantine --stall-timeout 30

    # Fleet detection: every non-attacker node monitored at once, all
    # windows closing on a tick scored in one batch, alarms fused k-of-n
    python -m repro fleet --protocol aodv --transport udp --quorum 2

    # The paper's §3 illustrative example (Tables 1-3)
    python -m repro illustrate

Simulation-heavy commands accept ``--jobs`` (parallel trace fan-out;
deterministic — any job count yields identical numbers), ``--cache-dir``
and ``--no-cache`` (the persistent artifact cache; a warm cache re-run
performs zero simulations).
"""

from __future__ import annotations

import argparse
import sys


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--protocol", choices=["aodv", "dsr", "olsr"], default="aodv")
    parser.add_argument("--transport", choices=["udp", "tcp"], default="udp")
    parser.add_argument("--nodes", type=int, default=20)
    parser.add_argument("--duration", type=float, default=1000.0)
    parser.add_argument("--connections", type=int, default=100)
    parser.add_argument("--seed", type=int, default=1)


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for trace simulation "
             "(default: $REPRO_JOBS or 1; results are identical for any N)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact cache for this run",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-trace wall-clock budget under --jobs > 1; a hung "
             "simulation is cancelled and retried (default: no timeout)",
    )
    parser.add_argument(
        "--task-retries", type=int, default=None, metavar="N",
        help="retry budget per trace before the run fails (default: 2)",
    )
    parser.add_argument(
        "--bench", default=None, metavar="FILE",
        help="after the run, dump runtime metrics (stage timings, cache "
             "counters, per-trace wall-clock) to FILE as JSON",
    )
    # Hidden chaos-testing hook: a deterministic fault-injection script,
    # e.g. --inject-faults crash:2,hang:0:1+2,cache-enospc:1
    # (see repro.runtime.faults.FaultPlan.parse).  CI uses it to exercise
    # every recovery path; it is not part of the supported interface.
    parser.add_argument("--inject-faults", default=None, help=argparse.SUPPRESS)


def _add_durability_args(parser: argparse.ArgumentParser) -> None:
    """Durable-run flags shared by the stream and fleet commands."""
    parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="snapshot the full streaming state to FILE during the run "
             "(atomic, fingerprinted; see repro.stream.durability)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint cadence in sampling ticks (default: 16)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="FILE",
        help="restore FILE before streaming and replay only the "
             "remainder; a corrupted checkpoint fails loudly",
    )
    parser.add_argument(
        "--row-policy", choices=["strict", "quarantine"], default=None,
        help="degraded-input policy: 'strict' trusts every row, "
             "'quarantine' routes late/duplicate/NaN/out-of-range rows "
             "to typed fault records instead of scoring them "
             "(default: strict)",
    )
    # Hidden stream-layer chaos hook, e.g.
    # --inject-stream-faults drop-row:s0/n1:3,crash-lane:s0/n2:6
    # (see repro.stream.faults.StreamFaultPlan.parse).
    parser.add_argument("--inject-stream-faults", default=None,
                        help=argparse.SUPPRESS)


def _progress_printer(event) -> None:
    """Live per-trace progress lines, fed by the metrics hook."""
    if event.kind == "cache_hit":
        print(f"  [cache]  {event.label}")
    elif event.kind == "resumed":
        print(f"  [resume] {event.label}")
    elif event.kind == "simulated":
        print(f"  [sim]    {event.label}  ({event.seconds:.1f}s)")
    elif event.kind == "retry":
        print(f"  [retry]  {event.label}")
    elif event.kind == "timeout":
        print(f"  [timeout] {event.label}  (limit {event.seconds:.0f}s)")
    elif event.kind == "alarm":
        print(f"  [ALARM]  {event.label}")
    elif event.kind == "fused_alarm":
        print(f"  [FUSED]  {event.label}")
    elif event.kind == "stream_fault":
        print(f"  [FAULT]  {event.label}")
    elif event.kind == "lane_sealed":
        print(f"  [SEAL]   {event.label}")
    elif event.kind == "duplicate_seal":
        print(f"  [SEAL]   {event.label} (duplicate, no-op)")
    elif event.kind == "checkpoint":
        print(f"  [CKPT]   saved {event.label}")
    elif event.kind == "restore":
        print(f"  [CKPT]   restored {event.label}")
    elif event.kind in ("fallback", "respawn", "task_failed", "pool_failed",
                        "cache_write_failed", "cache_off"):
        print(f"  [runtime] {event.label}")


def _build_session(args: argparse.Namespace):
    """A Session wired to the CLI's runtime flags + live progress."""
    from repro.runtime import FaultPlan, RuntimeMetrics, Session

    faults = (
        FaultPlan.parse(args.inject_faults)
        if getattr(args, "inject_faults", None) else None
    )
    return Session(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        cache=not args.no_cache,
        metrics=RuntimeMetrics(on_event=_progress_printer),
        task_timeout=args.task_timeout,
        max_retries=args.task_retries,
        faults=faults,
    )


def _dump_metrics(session, args: argparse.Namespace) -> None:
    """Honour ``--bench FILE``: write the session's runtime metrics."""
    path = getattr(args, "bench", None)
    if not path:
        return
    import json

    m = session.metrics
    payload = {
        "stage_seconds": {k: round(v, 4) for k, v in m.stage_seconds.items()},
        "trace_seconds": [(label, round(s, 4)) for label, s in m.trace_seconds],
        "simulations": m.simulations,
        "cache_hits": m.cache_hits,
        "cache_misses": m.cache_misses,
        "retries": m.retries,
        "timeouts": m.timeouts,
        "summary": m.summary(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"runtime metrics written to {path}")


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one scenario and print trace statistics."""
    from repro.simulation.scenario import ScenarioConfig

    config = ScenarioConfig(
        protocol=args.protocol,
        transport=args.transport,
        n_nodes=args.nodes,
        duration=args.duration,
        max_connections=args.connections,
        seed=args.seed,
    )
    session = _build_session(args)
    print(f"simulating {args.protocol}/{args.transport}: "
          f"{args.nodes} nodes, {args.duration:.0f}s ...")
    trace = session.trace(config)
    print(f"data packets originated : {trace.data_originated}")
    print(f"data packets delivered  : {trace.data_delivered}")
    print(f"delivery ratio          : {trace.delivery_ratio():.3f}")
    print(f"total trace events      : {trace.recorder.total_packets()}")
    print(f"sampling windows        : {len(trace.tick_times)}")
    print(f"runtime                 : {session.metrics.summary()}")
    _dump_metrics(session, args)
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    """Run a full detection experiment and print its metrics."""
    from repro.eval.experiments import ExperimentPlan

    plan = ExperimentPlan(
        protocol=args.protocol,
        transport=args.transport,
        n_nodes=args.nodes,
        duration=args.duration,
        max_connections=args.connections,
        attack_kind=args.attack,
    )
    session = _build_session(args)
    print(f"running detection experiment: {args.protocol}/{args.transport}, "
          f"attack={args.attack}, classifier={args.classifier}, "
          f"jobs={session.jobs}")
    print("simulating traces (train x2, calibration, normal evals, attack evals) ...")
    session.bundle(plan)
    print(f"training {args.classifier} sub-models ...")
    result = session.detect(plan, classifier=args.classifier, method=args.method)
    recall, precision = result.recall_precision_at_threshold()
    print(f"AUC above diagonal      : {result.auc:.3f}  (max 0.5)")
    r, p, thr = result.optimal
    print(f"optimal operating point : recall {r:.2f}, precision {p:.2f} "
          f"(threshold {thr:.3f})")
    print(f"at calibrated threshold : recall {recall:.2f}, precision {precision:.2f} "
          f"(threshold {result.threshold:.3f})")
    print(f"runtime                 : {session.metrics.summary()}")
    _dump_metrics(session, args)
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Train offline, then stream one live scenario through the detector."""
    from repro.eval.experiments import ExperimentPlan

    plan = ExperimentPlan(
        protocol=args.protocol,
        transport=args.transport,
        n_nodes=args.nodes,
        duration=args.duration,
        max_connections=args.connections,
        attack_kind=args.attack,
    )
    session = _build_session(args)
    kind = "normal (no attack)" if args.normal else f"attack={args.attack}"
    print(f"streaming online detection: {args.protocol}/{args.transport}, "
          f"{kind}, classifier={args.classifier}, jobs={session.jobs}")
    print("training detector on cached normal traces ...")
    session.fitted_detector(plan, classifier=args.classifier, method=args.method)
    print("streaming live scenario (alarms print as windows close) ...")
    result = session.stream_detect(
        plan,
        classifier=args.classifier,
        method=args.method,
        seed=args.stream_seed,
        attack=not args.normal,
        row_policy=args.row_policy,
        attribution=args.attribution,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume_from=args.resume,
        stream_faults=args.inject_stream_faults,
    )
    print(f"stream                  : {result.summary()}")
    print(f"calibrated threshold    : {result.threshold:.3f}  ({result.method})")
    if result.labels.any():
        recall, precision = result.recall_precision()
        print(f"vs ground truth         : recall {recall:.2f}, "
              f"precision {precision:.2f}")
    else:
        rate = len(result.alarms) / result.windows if result.windows else 0.0
        print(f"false-alarm rate        : {rate:.3f} "
              f"({len(result.alarms)}/{result.windows} windows)")
    print(f"runtime                 : {session.metrics.summary()}")
    _dump_metrics(session, args)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Train offline, then stream every monitored node through one fleet."""
    from repro.eval.experiments import ExperimentPlan

    plan = ExperimentPlan(
        protocol=args.protocol,
        transport=args.transport,
        n_nodes=args.nodes,
        duration=args.duration,
        max_connections=args.connections,
        attack_kind=args.attack,
    )
    if args.monitors is None:
        monitors = None
        n_monitors = plan.n_nodes - 1
    else:
        if args.monitors < 1:
            print("--monitors must be >= 1", file=sys.stderr)
            return 2
        monitors = [n for n in range(plan.n_nodes) if n != plan.attacker]
        monitors = monitors[: args.monitors]
        n_monitors = len(monitors)
    quorum: int | float = (
        float(args.quorum) if "." in args.quorum else int(args.quorum)
    )
    session = _build_session(args)
    kind = "normal (no attack)" if args.normal else f"attack={args.attack}"
    print(f"fleet detection: {args.protocol}/{args.transport}, {kind}, "
          f"{n_monitors} monitored nodes, quorum={quorum}, "
          f"classifier={args.classifier}, jobs={session.jobs}")
    print("training detector on cached normal traces ...")
    session.fitted_detector(plan, classifier=args.classifier, method=args.method)
    print("streaming live scenario (fused alarms print as windows close) ...")
    result = session.fleet_detect(
        plan,
        classifier=args.classifier,
        method=args.method,
        seeds=[args.stream_seed] if args.stream_seed is not None else None,
        attack=not args.normal,
        monitors=monitors,
        quorum=quorum,
        row_policy=args.row_policy,
        attribution=args.attribution,
        stall_timeout=args.stall_timeout,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume_from=args.resume,
        stream_faults=args.inject_stream_faults,
    )
    print(f"fleet                   : {result.summary()}")
    print(f"calibrated threshold    : {result.threshold:.3f}  ({result.method})")
    print(f"fused alarms            : {len(result.fused)} "
          f"(quorum {result.quorum} over {result.n_streams} streams)")
    if result.fault_records:
        print(f"quarantined rows        : {len(result.fault_records)}")
    if result.sealed:
        reasons = ", ".join(f"{k}={v}" for k, v in sorted(result.sealed.items()))
        print(f"sealed lanes            : {reasons}")
    print(f"runtime                 : {session.metrics.summary()}")
    _dump_metrics(session, args)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run all three classifiers on one condition and print the report."""
    from repro.eval.experiments import ExperimentPlan
    from repro.eval.report import scenario_report

    plan = ExperimentPlan(
        protocol=args.protocol,
        transport=args.transport,
        n_nodes=args.nodes,
        duration=args.duration,
        max_connections=args.connections,
        attack_kind=args.attack,
    )
    session = _build_session(args)
    print("simulating traces and training all classifiers "
          "(this takes a few minutes) ...")
    print(scenario_report(plan, session=session))
    print(f"runtime: {session.metrics.summary()}")
    _dump_metrics(session, args)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark suites and write BENCH_*.json files."""
    import os

    from repro.runtime.bench import (
        run_attribution_bench,
        run_fleet_bench,
        run_model_bench,
        run_simulator_bench,
        run_stream_chaos_bench,
        write_bench,
    )

    os.makedirs(args.out_dir, exist_ok=True)
    rc = 0
    suites = []
    if args.suite in ("simulator", "all"):
        suites.append(("simulator", run_simulator_bench))
    if args.suite in ("model", "all"):
        suites.append(("model", run_model_bench))
    if args.suite in ("fleet", "all"):
        suites.append(("fleet", run_fleet_bench))
    if args.suite in ("stream-chaos", "all"):
        suites.append(("stream_chaos", run_stream_chaos_bench))
    if args.suite == "attribution":
        suites.append(("attribution", run_attribution_bench))
    for name, runner in suites:
        print(f"benchmarking {name} ({'quick' if args.quick else 'full'}) ...")
        kwargs = {"quick": args.quick}
        if name == "simulator" and args.profile:
            kwargs["profile"] = True
        payload = runner(**kwargs)
        for entry in payload["entries"]:
            print(f"  {entry['name']:32s} {entry['baseline_seconds']:8.3f}s -> "
                  f"{entry['optimized_seconds']:8.3f}s  ({entry['speedup']:.2f}x)")
            if entry.get("profile_top"):
                from repro.runtime.profiling import render_profile

                print(render_profile(entry["profile_top"], indent="    "))
        path = os.path.join(args.out_dir, f"BENCH_{name}.json")
        write_bench(payload, path)
        print(f"  written to {path}")
    return rc


def cmd_illustrate(args: argparse.Namespace) -> int:
    """Print the paper's two-node worked example (Table 3)."""
    from repro.core.illustrative import TwoNodeExample

    example = TwoNodeExample()
    print("Table 3 (two-node example): event, class, match count, probability")
    for score in example.all_event_scores():
        cls = "Normal  " if score.is_normal else "Abnormal"
        print(f"  {score.event}  {cls}  {score.avg_match_count:.2f}  "
              f"{score.avg_probability:.2f}")
    errors = example.classify_all(0.5)
    print(f"threshold 0.5: {errors}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cross-feature analysis for MANET routing anomaly detection "
                    "(ICDCS 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one MANET scenario")
    _add_scenario_args(p_sim)
    _add_runtime_args(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_det = sub.add_parser("detect", help="run a full detection experiment")
    _add_scenario_args(p_det)
    _add_runtime_args(p_det)
    p_det.add_argument("--classifier", choices=["c45", "ripper", "nbc"], default="c45")
    p_det.add_argument(
        "--method",
        choices=["match_count", "avg_probability", "calibrated_probability"],
        default="calibrated_probability",
    )
    p_det.add_argument("--attack", choices=["mixed", "blackhole", "dropping"],
                       default="mixed")
    p_det.set_defaults(func=cmd_detect)

    p_str = sub.add_parser(
        "stream", help="online detection over one live streamed scenario"
    )
    _add_scenario_args(p_str)
    _add_runtime_args(p_str)
    p_str.add_argument("--classifier", choices=["c45", "ripper", "nbc"], default="c45")
    p_str.add_argument(
        "--method",
        choices=["match_count", "avg_probability", "calibrated_probability"],
        default="calibrated_probability",
    )
    p_str.add_argument("--attack", choices=["mixed", "blackhole", "dropping"],
                       default="mixed")
    p_str.add_argument("--normal", action="store_true",
                       help="stream an intrusion-free trace (alarm rate should "
                            "approach the calibrated false-alarm rate)")
    p_str.add_argument("--stream-seed", type=int, default=None, metavar="SEED",
                       help="mobility seed of the streamed trace (default: the "
                            "plan's first attack seed, or first normal seed "
                            "with --normal)")
    p_str.add_argument("--attribution", action="store_true",
                       help="classify each alarm: [ALARM] lines gain "
                            "type=<anomaly class> features=<culprits> "
                            "onset=<estimated start> fragments "
                            "(scores/alarms unchanged)")
    _add_durability_args(p_str)
    p_str.set_defaults(func=cmd_stream)

    p_flt = sub.add_parser(
        "fleet", help="multiplexed online detection across every monitored node"
    )
    _add_scenario_args(p_flt)
    _add_runtime_args(p_flt)
    p_flt.add_argument("--classifier", choices=["c45", "ripper", "nbc"], default="c45")
    p_flt.add_argument(
        "--method",
        choices=["match_count", "avg_probability", "calibrated_probability"],
        default="calibrated_probability",
    )
    p_flt.add_argument("--attack", choices=["mixed", "blackhole", "dropping"],
                       default="mixed")
    p_flt.add_argument("--normal", action="store_true",
                       help="stream an intrusion-free trace")
    p_flt.add_argument("--stream-seed", type=int, default=None, metavar="SEED",
                       help="mobility seed of the streamed trace (default: the "
                            "plan's first attack seed, or first normal seed "
                            "with --normal)")
    p_flt.add_argument("--monitors", type=int, default=None, metavar="M",
                       help="monitor only the first M non-attacker nodes "
                            "(default: all of them)")
    p_flt.add_argument("--quorum", default="1", metavar="K",
                       help="fused-alarm vote: an integer is absolute k-of-n; "
                            "a fraction in (0,1] is a share of the streams "
                            "reporting on that tick (default: 1)")
    p_flt.add_argument("--attribution", action="store_true",
                       help="classify alarms per lane and fuse typed votes: "
                            "[ALARM]/[FUSED] lines gain type=... features=... "
                            "fragments (scores/alarms unchanged)")
    _add_durability_args(p_flt)
    p_flt.add_argument("--stall-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="seal a lane 'stalled' once its clock lags the "
                            "most advanced lane of its scenario by more than "
                            "this many simulation seconds (default: never)")
    p_flt.set_defaults(func=cmd_fleet)

    p_rep = sub.add_parser("report", help="compare all classifiers on one condition")
    _add_scenario_args(p_rep)
    _add_runtime_args(p_rep)
    p_rep.add_argument("--attack", choices=["mixed", "blackhole", "dropping"],
                       default="mixed")
    p_rep.set_defaults(func=cmd_report)

    p_bench = sub.add_parser(
        "bench", help="measure the kernel/model fast paths, write BENCH_*.json"
    )
    p_bench.add_argument("--suite",
                         choices=["simulator", "model", "fleet",
                                  "stream-chaos", "attribution", "all"],
                         default="all",
                         help="'attribution' runs the attack-taxonomy "
                              "classification harness (its own CI leg; not "
                              "part of 'all')")
    p_bench.add_argument("--quick", action="store_true",
                         help="CI-scale workloads (seconds instead of minutes)")
    p_bench.add_argument("--out-dir", default=".", metavar="DIR",
                         help="directory for the BENCH_*.json files (default: .)")
    p_bench.add_argument("--profile", action="store_true",
                         help="profile one fast-pathed run per end-to-end "
                              "simulator row and print/record the cProfile "
                              "top-N cumulative table")
    p_bench.set_defaults(func=cmd_bench)

    p_ill = sub.add_parser("illustrate", help="print the paper's §3 example")
    p_ill.set_defaults(func=cmd_illustrate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
