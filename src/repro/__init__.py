"""repro — Cross-Feature Analysis for Detecting Ad-Hoc Routing Anomalies.

A full reproduction of Huang, Fan, Lee & Yu (ICDCS 2003): the
cross-feature analysis anomaly-detection framework, the MANET simulation
substrate it was evaluated on (AODV/DSR routing over a mobile wireless
medium with CBR/TCP traffic), the black hole and packet dropping attacks,
the Table 4/5 feature sets, and from-scratch C4.5 / RIPPER / naive Bayes
sub-model engines.

Quickstart::

    from repro import ExperimentPlan, Session

    session = Session(jobs=4)           # parallel traces + on-disk cache
    plan = ExperimentPlan(protocol="aodv", transport="udp", duration=600.0)
    result = session.detect(plan, classifier="c45")
    print(result.auc, result.optimal)

:class:`Session` is the runtime entry point: it fans independent trace
simulations out across worker processes and persists the simulated
artifacts in a content-addressed on-disk cache (``~/.cache/repro`` or
``$REPRO_CACHE_DIR``), so a warm re-run performs zero simulations.
"""

from repro.attribution import ANOMALY_TYPES, AlarmAttributor, Verdict
from repro.core import (
    CrossFeatureDetector,
    CrossFeatureModel,
    EqualFrequencyDiscretizer,
    RegressionCrossFeatureModel,
    TwoNodeExample,
    average_match_count,
    average_probability,
    select_threshold,
)
from repro.eval.experiments import (
    DetectionResult,
    ExperimentPlan,
    TraceBundle,
    four_scenarios,
    run_detection_experiment,
)
from repro.features import FeatureDataset, extract_features
from repro.ml import CLASSIFIERS, C45Classifier, NaiveBayesClassifier, RipperClassifier
from repro.runtime import ArtifactCache, RuntimeMetrics, Session, TraceEvent, default_session
from repro.simulation import ScenarioConfig, SimulationTrace, run_scenario
from repro.stream import (
    Alarm,
    CheckpointError,
    FleetAlarm,
    FleetDetector,
    FleetResult,
    FleetStream,
    OnlineDetector,
    StreamFault,
    StreamFaultPlan,
    StreamingExtractor,
    StreamResult,
    replay_trace,
)

__version__ = "1.0.0"

__all__ = [
    "ANOMALY_TYPES",
    "Alarm",
    "AlarmAttributor",
    "ArtifactCache",
    "C45Classifier",
    "CLASSIFIERS",
    "CheckpointError",
    "CrossFeatureDetector",
    "CrossFeatureModel",
    "DetectionResult",
    "EqualFrequencyDiscretizer",
    "ExperimentPlan",
    "FeatureDataset",
    "FleetAlarm",
    "FleetDetector",
    "FleetResult",
    "FleetStream",
    "NaiveBayesClassifier",
    "OnlineDetector",
    "RegressionCrossFeatureModel",
    "RipperClassifier",
    "RuntimeMetrics",
    "ScenarioConfig",
    "Session",
    "SimulationTrace",
    "StreamFault",
    "StreamFaultPlan",
    "StreamResult",
    "StreamingExtractor",
    "TraceBundle",
    "TraceEvent",
    "TwoNodeExample",
    "Verdict",
    "average_match_count",
    "average_probability",
    "default_session",
    "extract_features",
    "four_scenarios",
    "replay_trace",
    "run_detection_experiment",
    "run_scenario",
    "select_threshold",
]
