"""Attack framework: on-off intrusion sessions and ground-truth intervals.

The paper does not run attacks continuously ("otherwise it could become an
obvious target"): intrusion sessions are inserted periodically, with the
session duration equal to the gap between sessions.  :func:`periodic_sessions`
builds that schedule; an :class:`Attack` can also be given an explicit
session list (Figure 5 uses sessions at 2500 s, 5000 s and 7500 s of 100 s
each).

Ground truth: each attack knows its session intervals, and
:func:`merge_intervals` combines several attacks' intervals into the
window-labelling function used by the evaluation harness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.simulation.engine import Simulator
from repro.simulation.node import Node

Interval = tuple[float, float]


def periodic_sessions(
    start: float,
    duration: float,
    until: float,
    gap: float | None = None,
) -> list[Interval]:
    """The paper's on-off schedule: sessions of ``duration`` separated by
    ``gap`` (defaulting to ``duration``, as in §4.1), from ``start`` to
    ``until``."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    gap = duration if gap is None else gap
    sessions = []
    t = start
    while t < until:
        sessions.append((t, min(t + duration, until)))
        t += duration + gap
    return sessions


def merge_intervals(intervals: Sequence[Interval]) -> list[Interval]:
    """Union of possibly-overlapping intervals, sorted and coalesced."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [list(ordered[0])]
    for s, e in ordered[1:]:
        if s <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], e)
        else:
            merged.append([s, e])
    return [(s, e) for s, e in merged]


class Attack(ABC):
    """A compromised-node behaviour active during its sessions.

    Subclasses implement :meth:`activate` / :meth:`deactivate`; the base
    class schedules them at session boundaries once :meth:`install` wires
    the attack to the simulation.
    """

    def __init__(self, attacker: int, sessions: Sequence[Interval]):
        self.attacker = attacker
        self.sessions = list(sessions)
        self.sim: Simulator | None = None
        self.nodes: list[Node] | None = None
        self.active = False

    @property
    def node(self) -> Node:
        """The compromised node (valid after :meth:`install`)."""
        if self.nodes is None:
            raise RuntimeError("attack not installed")
        return self.nodes[self.attacker]

    def install(self, sim: Simulator, nodes: list[Node]) -> None:
        """Wire the attack into a simulation and schedule its sessions."""
        if not 0 <= self.attacker < len(nodes):
            raise ValueError(f"attacker id {self.attacker} out of range")
        self.sim = sim
        self.nodes = nodes
        for start, end in self.sessions:
            sim.schedule_at(start, self._activate)
            sim.schedule_at(end, self._deactivate)

    def _activate(self) -> None:
        self.active = True
        self.activate()

    def _deactivate(self) -> None:
        self.active = False
        self.deactivate()

    @abstractmethod
    def activate(self) -> None:
        """Turn the malicious behaviour on (session start)."""

    @abstractmethod
    def deactivate(self) -> None:
        """Turn the malicious behaviour off (session end)."""
