"""Packet dropping attacks.

Table 6 evaluates **selective** dropping (drop packets addressed to a
specific destination); §2.3's taxonomy also names **random**, **constant**
and **periodic** variants, all implemented here behind one predicate-based
attack.  The drop is silent: the compromised node records nothing, exactly
like a selfish or failed relay — the detector has to see the anomaly in the
*surrounding* nodes' traffic statistics.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.attacks.base import Attack, Interval
from repro.simulation.packet import Packet, PacketType


class DropMode(str, Enum):
    """Dropping variants from §2.3."""

    SELECTIVE = "selective"  #: drop packets for a specific destination
    RANDOM = "random"        #: drop each packet with probability ``drop_prob``
    CONSTANT = "constant"    #: drop every packet
    PERIODIC = "periodic"    #: drop during a duty-cycled fraction of time


class PacketDroppingAttack(Attack):
    """Silent data-packet dropping at a compromised relay.

    Parameters
    ----------
    attacker, sessions:
        Compromised node and active intervals.
    mode:
        Dropping variant.
    destination:
        Target destination for :attr:`DropMode.SELECTIVE` (required there,
        ignored otherwise) — the Table 6 script parameter.
    drop_prob:
        Per-packet drop probability for :attr:`DropMode.RANDOM`.
    period, duty:
        For :attr:`DropMode.PERIODIC`: drop during the first
        ``duty * period`` seconds of every ``period``-second cycle.
    """

    def __init__(
        self,
        attacker: int,
        sessions: Sequence[Interval],
        mode: DropMode = DropMode.SELECTIVE,
        destination: int | None = None,
        drop_prob: float = 0.5,
        period: float = 10.0,
        duty: float = 0.5,
    ):
        super().__init__(attacker, sessions)
        self.mode = DropMode(mode)
        if self.mode is DropMode.SELECTIVE and destination is None:
            raise ValueError("selective dropping requires a destination")
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        self.destination = destination
        self.drop_prob = drop_prob
        self.period = period
        self.duty = duty
        self.dropped = 0

    # ------------------------------------------------------------------
    def activate(self) -> None:
        self.node.drop_filter = self._should_drop

    def deactivate(self) -> None:
        self.node.drop_filter = None

    # ------------------------------------------------------------------
    def _should_drop(self, packet: Packet) -> bool:
        if packet.ptype != PacketType.DATA:
            return False
        if self.mode is DropMode.SELECTIVE:
            drop = packet.dest == self.destination
        elif self.mode is DropMode.RANDOM:
            assert self.sim is not None
            drop = self.sim.rng.random() < self.drop_prob
        elif self.mode is DropMode.CONSTANT:
            drop = True
        else:  # PERIODIC
            assert self.sim is not None
            drop = (self.sim.now % self.period) < self.duty * self.period
        if drop:
            self.dropped += 1
        return drop
