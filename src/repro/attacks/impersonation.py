"""Identity impersonation attack (§2.3 traffic-distortion taxonomy).

"Attackers can impersonate another user to achieve various malicious
goals ... IP and MAC addresses ... are easy to be forged during the
transmission of data packets on network or link layers if the underlying
communication channel is not encrypted."

While a session is active the compromised node acts *in the victim's
name* on two channels:

* **forged route errors** — control messages attributed to the victim
  that tear down working routes (for AODV, RERRs that invalidate routes
  through the victim; for DSR, RERRs reporting the victim's links as
  broken).  The network reacts by re-discovering, so the route fabric
  churns without the victim having done anything;
* **forged data traffic** — data packets carrying the victim's address
  as origin, injected toward random destinations, polluting any
  per-identity accounting.

Both channels distort the traffic attribution the network observes —
the detection problem the paper's taxonomy highlights: "Pointing to an
innocent individual as the culprit can be even worse than not finding
any identity responsible at all."
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.base import Attack, Interval
from repro.simulation.packet import BROADCAST, Direction, Packet, PacketType


class ImpersonationAttack(Attack):
    """Forged-identity control and data traffic.

    Parameters
    ----------
    attacker:
        Compromised node id.
    victim:
        The impersonated node.
    sessions:
        Active intervals.
    rate:
        Forged messages per second while active (alternating between a
        forged RERR and a forged data packet).
    """

    def __init__(
        self,
        attacker: int,
        victim: int,
        sessions: Sequence[Interval],
        rate: float = 2.0,
    ):
        super().__init__(attacker, sessions)
        if rate <= 0:
            raise ValueError("rate must be positive")
        if victim == attacker:
            raise ValueError("the attacker impersonates someone else")
        self.victim = victim
        self.rate = rate
        self.forged_control = 0
        self.forged_data = 0
        self._epoch = 0
        self._flip = False

    def activate(self) -> None:
        self._epoch += 1
        self._tick(self._epoch)

    def deactivate(self) -> None:
        self._epoch += 1

    # ------------------------------------------------------------------
    def _tick(self, epoch: int) -> None:
        if epoch != self._epoch or not self.active:
            return
        assert self.sim is not None and self.nodes is not None
        if self._flip:
            self._forge_rerr()
        else:
            self._forge_data()
        self._flip = not self._flip
        self.sim.schedule(1.0 / self.rate, self._tick, epoch)

    def _forge_rerr(self) -> None:
        """A route error in the victim's name, torn through the fabric."""
        node = self.node
        routing = node.routing
        assert routing is not None and self.sim is not None
        if routing.name == "aodv":
            # "The victim can no longer reach these destinations": every
            # other node is declared unreachable with a bumped sequence
            # number, so receivers invalidate routes through the victim.
            unreachable = [
                (d, 1) for d in range(len(self.nodes or []))
                if d not in (self.victim, self.attacker)
            ][:8]
            packet = Packet(
                ptype=PacketType.RERR,
                origin=self.victim,
                dest=BROADCAST,
                size=32,
                ttl=1,
                info={"unreachable": unreachable},
            )
            node.stats.log_packet(self.sim.now, PacketType.RERR, Direction.SENT)
            node.broadcast(packet)
        else:
            # DSR: report one of the victim's links broken.  Source-routed
            # RERRs need a path; a 1-hop broadcast reaches the neighbours,
            # who purge every cached path using the link.
            target = self.sim.rng.randrange(len(self.nodes or []))
            packet = Packet(
                ptype=PacketType.RERR,
                origin=self.victim,
                dest=BROADCAST,
                size=32,
                ttl=1,
                info={
                    "broken": (self.victim, target),
                    "sr": [self.attacker, BROADCAST],
                    "sr_index": 0,
                },
            )
            node.stats.log_packet(self.sim.now, PacketType.RERR, Direction.SENT)
            node.broadcast(packet)
        self.forged_control += 1

    def _forge_data(self) -> None:
        """A data packet claiming the victim as its origin."""
        node = self.node
        assert node.routing is not None and self.sim is not None
        dest = self.sim.rng.randrange(len(self.nodes or []))
        if dest in (self.victim, self.attacker):
            return
        packet = Packet(
            ptype=PacketType.DATA,
            origin=self.victim,  # the forged identity
            dest=dest,
            size=512,
        )
        node.stats.log_packet(self.sim.now, PacketType.DATA, Direction.SENT)
        node.routing.send_data(packet)
        self.forged_data += 1
