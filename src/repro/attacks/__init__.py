"""MANET routing attacks (Table 6) plus the paper's §2.3 taxonomy extras.

* :class:`BlackholeAttack` — forged freshest-route advertisements absorb
  all nearby traffic at the compromised node, which then drops it.
* :class:`PacketDroppingAttack` — selective (per-destination) dropping as
  in Table 6, plus the random / constant / periodic variants from the
  attack taxonomy in §2.3.
* :class:`UpdateStormAttack` — the "update storm" route-logic attack from
  §2.3: meaningless route-discovery floods that exhaust bandwidth.

All attacks run under the paper's on-off intrusion session model (equal
session duration and inter-session gap, or explicit session lists) and
expose their active intervals as ground truth for labelling trace windows.
"""

from repro.attacks.base import Attack, merge_intervals, periodic_sessions
from repro.attacks.blackhole import BlackholeAttack
from repro.attacks.dropping import DropMode, PacketDroppingAttack
from repro.attacks.flooding import UpdateStormAttack
from repro.attacks.impersonation import ImpersonationAttack

__all__ = [
    "Attack",
    "BlackholeAttack",
    "DropMode",
    "ImpersonationAttack",
    "PacketDroppingAttack",
    "UpdateStormAttack",
    "merge_intervals",
    "periodic_sessions",
]
