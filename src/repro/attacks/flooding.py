"""Update storm attack (§2.3 route-logic taxonomy).

"The malicious node deliberately floods the whole network with meaningless
route discovery messages ... to exhaust the network bandwidth and
effectively paralyze the network."  Implemented as a high-rate stream of
route requests for rotating targets: every request triggers a network-wide
rebroadcast flood, and the interface-queue serialization in the medium
turns the storm into real congestion (queue drops, delayed data).
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.base import Attack, Interval
from repro.simulation.packet import BROADCAST, Direction, Packet, PacketType


class UpdateStormAttack(Attack):
    """Meaningless route-discovery flooding.

    Parameters
    ----------
    rate:
        Forged route requests per second while a session is active.
    """

    def __init__(self, attacker: int, sessions: Sequence[Interval], rate: float = 20.0):
        super().__init__(attacker, sessions)
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.floods_sent = 0
        self._epoch = 0
        self._rreq_id = 1 << 24  # distinct id space: every flood is "new"

    def activate(self) -> None:
        self._epoch += 1
        self._flood_tick(self._epoch)

    def deactivate(self) -> None:
        self._epoch += 1

    def _flood_tick(self, epoch: int) -> None:
        if epoch != self._epoch or not self.active:
            return
        assert self.sim is not None and self.nodes is not None
        node = self.node
        self._rreq_id += 1
        # A discovery for a rotating (often unreachable) target: the id is
        # always fresh so every node rebroadcasts it.
        target = self.sim.rng.randrange(len(self.nodes) + 8)
        info: dict = {"rreq_id": self._rreq_id, "target": target}
        if node.routing is not None and node.routing.name == "aodv":
            info.update({"origin_seq": 1, "target_seq": 0})
        else:
            info.update({"route": [node.node_id]})
        packet = Packet(
            ptype=PacketType.RREQ,
            origin=node.node_id,
            dest=BROADCAST,
            size=48,
            ttl=16,
            info=info,
        )
        node.stats.log_packet(node.sim.now, PacketType.RREQ, Direction.SENT)
        node.broadcast(packet)
        self.floods_sent += 1
        self.sim.schedule(1.0 / self.rate, self._flood_tick, epoch)
