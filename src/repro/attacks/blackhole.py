"""Black hole attack (Table 6).

While a session is active, the compromised node

1. floods forged route advertisements — protocol-specific forged RREQs
   built by :meth:`AodvProtocol.forge_route_advert` /
   :meth:`DsrProtocol.forge_route_advert` — iterating over every other node
   as the claimed source, so that *all* traffic flows, no matter their
   destination, bend toward the attacker ("a region in space in which the
   pull of gravity is so strong that nothing can escape");
2. silently drops every data packet that arrives for forwarding (the
   denial-of-service payload of the attack).

For AODV the forged sequence number is the maximum allowed value, so — as
the paper observes in §4.2 — the poisoned routes are never displaced after
the session ends: the network does not self-heal.
"""

from __future__ import annotations

from typing import Sequence

from repro.attacks.base import Attack, Interval
from repro.simulation.packet import Direction, Packet, PacketType


class BlackholeAttack(Attack):
    """Forged-freshest-route black hole.

    Parameters
    ----------
    attacker:
        Compromised node id.
    sessions:
        Active intervals (see :mod:`repro.attacks.base`).
    advert_interval:
        How often the full victim sweep is re-broadcast while active.
        Re-advertising keeps newly discovered legitimate routes suppressed.
    """

    def __init__(
        self,
        attacker: int,
        sessions: Sequence[Interval],
        advert_interval: float = 5.0,
    ):
        super().__init__(attacker, sessions)
        self.advert_interval = advert_interval
        self.adverts_sent = 0
        self.absorbed = 0
        self._epoch = 0  # invalidates stale advert loops after deactivation

    # ------------------------------------------------------------------
    def activate(self) -> None:
        node = self.node
        node.drop_filter = self._absorb
        self._epoch += 1
        self._advert_sweep(self._epoch)

    def deactivate(self) -> None:
        self.node.drop_filter = None
        self._epoch += 1

    # ------------------------------------------------------------------
    def _absorb(self, packet: Packet) -> bool:
        """Drop every data packet offered for forwarding."""
        self.absorbed += 1
        return True

    def _advert_sweep(self, epoch: int) -> None:
        if epoch != self._epoch or not self.active:
            return
        node = self.node
        routing = node.routing
        assert routing is not None and self.sim is not None
        n_nodes = len(self.nodes or [])
        victims = [v for v in range(n_nodes) if v != self.attacker]
        spacing = self.advert_interval / max(len(victims), 1) * 0.5
        for i, victim in enumerate(victims):
            self.sim.schedule(i * spacing, self._advertise, victim, epoch)
        self.sim.schedule(self.advert_interval, self._advert_sweep, epoch)

    def _advertise(self, victim: int, epoch: int) -> None:
        if epoch != self._epoch or not self.active:
            return
        node = self.node
        packet = node.routing.forge_route_advert(victim)  # type: ignore[union-attr]
        # The forged flood is on-air traffic like any other: the attacker's
        # own trace records the send, and every processing node records the
        # reception — that control-traffic surge is part of the anomaly
        # signature the detector picks up.
        node.stats.log_packet(node.sim.now, packet.ptype, Direction.SENT)
        node.broadcast(packet)
        self.adverts_sent += 1
