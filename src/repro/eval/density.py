"""Score density distributions (Figures 4 and 6).

The paper plots the density of average-probability outputs for normal and
abnormal traces with the decision threshold as a vertical line; the mass
of the abnormal curve to the *right* of the threshold is the undetected
anomaly fraction, and the mass of the normal curve to the *left* is the
false-alarm fraction.  This module computes those histograms/densities and
the two leakage masses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ScoreDensity:
    """A normalised histogram over score space."""

    bin_edges: np.ndarray
    density: np.ndarray  #: integrates to 1 over the bins

    @property
    def bin_centers(self) -> np.ndarray:
        return (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0

    def mass_below(self, threshold: float) -> float:
        """Probability mass strictly below ``threshold`` (linear within bins)."""
        lo = self.bin_edges[:-1]
        widths = np.diff(self.bin_edges)
        # Covered width per bin: the whole bin below the threshold, the
        # partial overlap in the bin containing it, zero above.
        covered = np.clip(threshold - lo, 0.0, widths)
        return float((self.density * covered).sum())

    def mass_above(self, threshold: float) -> float:
        """Probability mass at or above ``threshold``."""
        return 1.0 - self.mass_below(threshold)


def score_density(
    scores: np.ndarray,
    n_bins: int = 20,
    score_range: tuple[float, float] = (0.0, 1.0),
) -> ScoreDensity:
    """Normalised score histogram over a fixed range.

    A fixed range keeps normal and abnormal densities directly
    comparable, as in the paper's figure panels.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.size == 0:
        raise ValueError("need at least one score")
    lo, hi = score_range
    if not lo < hi:
        raise ValueError("invalid score_range")
    clipped = np.clip(scores, lo, hi)
    density, edges = np.histogram(clipped, bins=n_bins, range=(lo, hi), density=True)
    return ScoreDensity(bin_edges=edges, density=density)


def separation_summary(
    normal: ScoreDensity, abnormal: ScoreDensity, threshold: float
) -> dict[str, float]:
    """The two leakage masses the paper reads off Figures 4/6.

    ``false_alarm_mass`` — normal density left of the threshold;
    ``missed_anomaly_mass`` — abnormal density right of the threshold.
    """
    return {
        "false_alarm_mass": normal.mass_below(threshold),
        "missed_anomaly_mass": abnormal.mass_above(threshold),
    }
