"""End-to-end detection experiments: the paper's §4 pipeline.

One :class:`ExperimentPlan` describes a test condition — routing protocol,
transport, attack composition, trace seeds and detector knobs.  The
pipeline then mirrors the paper's setup:

* **one normal trace as the training set** (optionally several),
* several further normal traces for evaluation,
* several traces with intrusions (mixed black hole + packet dropping by
  default, started at 25% and 50% of the trace as the paper starts them
  at 2500 s and 5000 s of 10 000 s; or single-attack compositions for the
  Figure 5/6 experiments),
* features extracted at one monitor node, sub-models trained on the
  normal trace, and every evaluation trace scored window by window.

Plans are frozen/hashable; simulation, caching and parallel execution
live in :mod:`repro.runtime` — :class:`repro.runtime.Session` is the
documented way to run this pipeline.  (The pre-Session module-level
wrappers ``cached_bundle`` / ``cached_result`` / ``simulate_bundle``
completed their deprecation cycle and were removed; importing them now
raises :class:`ImportError` with the migration hint.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.attacks import BlackholeAttack, DropMode, PacketDroppingAttack, periodic_sessions
from repro.attacks.base import Attack
from repro.core.model import CrossFeatureDetector
from repro.eval.metrics import PrCurve, area_above_diagonal, optimal_point, precision_recall_curve
from repro.features.extraction import FeatureDataset, extract_features
from repro.ml import CLASSIFIERS
from repro.simulation.scenario import ScenarioConfig, SimulationTrace

ATTACK_KINDS = ("mixed", "blackhole", "dropping")


@dataclass(frozen=True)
class ExperimentPlan:
    """A hashable description of one test condition."""

    protocol: str = "aodv"
    transport: str = "udp"
    n_nodes: int = 20
    duration: float = 1000.0
    max_connections: int = 40
    train_seeds: tuple[int, ...] = (11, 12)
    #: A held-out normal trace for sub-model baseline + threshold
    #: calibration (never used for training or evaluation).
    calibration_seed: int = 13
    normal_seeds: tuple[int, ...] = (21, 22)
    attack_seeds: tuple[int, ...] = (31, 32)
    #: One connection pattern shared by every trace of the condition (the
    #: ns-2 connection file); mobility varies with each trace seed.
    traffic_seed: int = 5
    monitor: int = 0
    warmup: float = 100.0
    periods: tuple[float, ...] = (5.0, 60.0, 900.0)
    attack_kind: str = "mixed"          #: "mixed", "blackhole" or "dropping"
    drop_mode: str = "constant"         #: DropMode value for dropping attacks
    blackhole_start_frac: float = 0.25  #: paper: 2500 s of 10 000 s
    dropping_start_frac: float = 0.5    #: paper: 5000 s of 10 000 s
    session_frac: float = 0.05          #: on-off session length / duration
    #: "post_attack" labels every window after the first session start as
    #: intrusive — the paper's own observation that the network never
    #: self-heals from the implemented intrusions; "session" labels only
    #: windows overlapping active sessions.
    label_policy: str = "post_attack"

    def __post_init__(self) -> None:
        # Validate the node count before anything touches `self.attacker`
        # (n_nodes - 1): a degenerate count would otherwise surface as a
        # confusing monitor/attacker clash or pass straight through.
        if self.n_nodes < 2:
            raise ValueError(
                f"n_nodes must be >= 2 (got {self.n_nodes}): a condition "
                "needs at least a monitor and a distinct attacker"
            )
        if self.attack_kind not in ATTACK_KINDS:
            raise ValueError(f"attack_kind must be one of {ATTACK_KINDS}")
        if self.monitor == self.attacker:
            raise ValueError("monitor must differ from the attacker")

    @property
    def attacker(self) -> int:
        """The compromised node: the last id, keeping monitor 0 honest."""
        return self.n_nodes - 1

    def scenario_config(self, seed: int) -> ScenarioConfig:
        """The scenario configuration for one trace of this condition."""
        return ScenarioConfig(
            protocol=self.protocol,
            transport=self.transport,
            n_nodes=self.n_nodes,
            duration=self.duration,
            max_connections=self.max_connections,
            seed=seed,
            traffic_seed=self.traffic_seed,
        )

    def build_attacks(self) -> list[Attack]:
        """Instantiate the attack composition for an abnormal trace."""
        T = self.duration
        session = self.session_frac * T
        attacks: list[Attack] = []
        if self.attack_kind == "mixed":
            attacks.append(
                BlackholeAttack(
                    attacker=self.attacker,
                    sessions=periodic_sessions(self.blackhole_start_frac * T, session, T),
                )
            )
            attacks.append(
                PacketDroppingAttack(
                    attacker=self.attacker,
                    sessions=periodic_sessions(self.dropping_start_frac * T, session, T),
                    mode=DropMode(self.drop_mode),
                    destination=self.monitor,
                )
            )
        else:
            # Figure 5 composition: three sessions at 25% / 50% / 75%.
            sessions = [
                (frac * T, frac * T + session) for frac in (0.25, 0.5, 0.75)
            ]
            if self.attack_kind == "blackhole":
                attacks.append(BlackholeAttack(attacker=self.attacker, sessions=sessions))
            else:
                attacks.append(
                    PacketDroppingAttack(
                        attacker=self.attacker,
                        sessions=sessions,
                        mode=DropMode(self.drop_mode),
                        destination=self.monitor,
                    )
                )
        return attacks


@dataclass
class TraceBundle:
    """All feature datasets of one test condition."""

    plan: ExperimentPlan
    train: FeatureDataset
    calibration: FeatureDataset
    normal_evals: list[FeatureDataset]
    abnormal_evals: list[FeatureDataset]

    def eval_scores_labels(self, score_fn) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated (scores, labels) across all evaluation traces."""
        scores, labels = [], []
        for ds in [*self.normal_evals, *self.abnormal_evals]:
            scores.append(score_fn(ds.X))
            labels.append(ds.labels)
        return np.concatenate(scores), np.concatenate(labels)


@dataclass
class RawTraces:
    """The simulated traces of one test condition, before extraction.

    Kept separate from :class:`TraceBundle` so multi-monitor analyses can
    re-extract features from the same simulations at no simulation cost.
    """

    plan: ExperimentPlan
    train: list[SimulationTrace]
    calibration: SimulationTrace
    normal_evals: list[SimulationTrace]
    abnormal_evals: list[SimulationTrace]


def plan_sim_key(plan: ExperimentPlan) -> ExperimentPlan:
    """The plan with extraction-only knobs normalised away.

    Two plans with equal sim keys simulate identical traces, so the
    runtime layer shares their simulations (periods, warmup, label policy
    and monitor only affect feature extraction).
    """
    return replace(
        plan,
        periods=(5.0,),
        warmup=0.0,
        label_policy="session",
        monitor=0,
    )


def simulate_raw_traces(
    plan: ExperimentPlan,
    jobs: int = 1,
    metrics=None,
) -> RawTraces:
    """Run all simulations of a test condition (no feature extraction).

    Always simulates fresh (no artifact cache); pass ``jobs > 1`` to fan
    the independent traces out across worker processes.  Prefer
    :meth:`repro.Session.raw_traces` to also get persistent caching.
    """
    from repro.runtime.executor import TraceExecutor
    from repro.runtime.session import _assemble_raw, _plan_tasks

    executor = TraceExecutor(jobs=jobs, metrics=metrics)
    return _assemble_raw(plan, executor.run(_plan_tasks(plan)))


def extract_bundle(raw: RawTraces, monitor: int | None = None) -> TraceBundle:
    """Extract the feature datasets of a test condition for one monitor.

    ``monitor`` defaults to the plan's; pass another node id to re-analyse
    the same traces from a different observation point (the paper verified
    "similar results and performance ... on other nodes").
    """
    plan = raw.plan
    monitor = plan.monitor if monitor is None else monitor
    if monitor == plan.attacker:
        raise ValueError("monitor must differ from the attacker")

    def dataset(trace) -> FeatureDataset:
        return extract_features(
            trace,
            monitor=monitor,
            periods=plan.periods,
            warmup=plan.warmup,
            label_policy=plan.label_policy,
        )

    return TraceBundle(
        plan=plan,
        train=FeatureDataset.concat([dataset(t) for t in raw.train]),
        calibration=dataset(raw.calibration),
        normal_evals=[dataset(t) for t in raw.normal_evals],
        abnormal_evals=[dataset(t) for t in raw.abnormal_evals],
    )


@dataclass
class DetectionResult:
    """Scored evaluation of one (plan, classifier, method) condition."""

    plan: ExperimentPlan
    classifier: str
    method: str
    threshold: float
    curve: PrCurve
    auc: float
    optimal: tuple[float, float, float]   #: (recall, precision, threshold)
    scores: np.ndarray
    labels: np.ndarray
    #: per-trace series: (name, times, scores, labels)
    series: list[tuple[str, np.ndarray, np.ndarray, np.ndarray]] = field(default_factory=list)

    def recall_precision_at_threshold(self) -> tuple[float, float]:
        """Operating point at the detector's calibrated threshold."""
        alarms = self.scores < self.threshold
        n_i = int(self.labels.sum())
        hit = int((alarms & self.labels).sum())
        recall = hit / n_i if n_i else 0.0
        precision = hit / int(alarms.sum()) if alarms.any() else 0.0
        return recall, precision


def run_detection_experiment(
    bundle: TraceBundle,
    classifier: str = "c45",
    method: str = "calibrated_probability",
    false_alarm_rate: float = 0.02,
    max_models: int | None = None,
    n_buckets: int = 5,
    n_jobs: int | None = 1,
    stage_hook: Callable[[str, float], None] | None = None,
) -> DetectionResult:
    """Train the detector on the bundle's normal traces and evaluate it.

    ``method`` defaults to the reproduction's calibrated scoring (see
    :mod:`repro.core.model`); pass ``"avg_probability"`` /
    ``"match_count"`` for the paper's verbatim Algorithms 3 / 2.
    ``n_jobs`` threads the L independent sub-model fits and scoring
    passes (``None``/``0`` = one per CPU); results are identical for
    any value.  ``stage_hook(stage, seconds)`` receives the ``fit`` and
    ``score`` wall-clocks (the Session routes it into
    :meth:`RuntimeMetrics.record_stage`).
    """
    if classifier not in CLASSIFIERS:
        raise ValueError(f"unknown classifier {classifier!r}; have {sorted(CLASSIFIERS)}")
    detector = CrossFeatureDetector(
        classifier_factory=CLASSIFIERS[classifier],
        method=method,
        false_alarm_rate=false_alarm_rate,
        max_models=max_models,
        n_buckets=n_buckets,
        n_jobs=n_jobs,
    )
    t0 = time.perf_counter()
    detector.fit(
        bundle.train.X,
        feature_names=bundle.train.feature_names,
        calibration_X=bundle.calibration.X,
    )
    if stage_hook is not None:
        stage_hook("fit", time.perf_counter() - t0)

    t0 = time.perf_counter()
    series = []
    scores_parts, labels_parts = [], []
    for kind, datasets in (("normal", bundle.normal_evals), ("abnormal", bundle.abnormal_evals)):
        for k, ds in enumerate(datasets):
            s = detector.score(ds.X)
            series.append((f"{kind}-{k}", ds.times, s, ds.labels))
            scores_parts.append(s)
            labels_parts.append(ds.labels)
    scores = np.concatenate(scores_parts)
    labels = np.concatenate(labels_parts)
    if stage_hook is not None:
        stage_hook("score", time.perf_counter() - t0)

    curve = precision_recall_curve(scores, labels)
    return DetectionResult(
        plan=bundle.plan,
        classifier=classifier,
        method=method,
        threshold=float(detector.threshold_),
        curve=curve,
        auc=area_above_diagonal(curve),
        optimal=optimal_point(curve),
        scores=scores,
        labels=labels,
        series=series,
    )


# ----------------------------------------------------------------------
# Pipeline helpers over the process-wide default Session.
# ----------------------------------------------------------------------
def _default_session():
    from repro.runtime.session import default_session

    return default_session()


#: The pre-Session wrappers, removed at the end of their deprecation
#: cycle; importing one raises ImportError naming the Session replacement.
_REMOVED_HELPERS = {
    "simulate_bundle": "Session().bundle(plan)",
    "cached_bundle": "Session().bundle(plan)",
    "cached_result": "Session().detect(plan, ...)",
}


def __getattr__(name: str):
    if name in _REMOVED_HELPERS:
        raise ImportError(
            f"repro.eval.experiments.{name}() was removed; create a "
            f"repro.Session and use {_REMOVED_HELPERS[name]} instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def cached_raw_traces(plan: ExperimentPlan) -> RawTraces:
    """Raw traces via the default session (shared across extraction knobs).

    The non-deprecated low-level alias; plans differing only in
    periods/warmup/labels/monitor share simulations (see
    :func:`plan_sim_key`).
    """
    return _default_session().raw_traces(plan)


def per_monitor_results(
    plan: ExperimentPlan,
    monitors: Sequence[int],
    classifier: str = "c45",
    method: str = "calibrated_probability",
) -> dict[int, DetectionResult]:
    """Repeat the detection experiment from several observation points.

    The paper collects all reported results "on one node only" and notes
    that "similar results and performance have been verified on other
    nodes"; this helper reproduces that verification.  The expensive
    simulations are shared — only feature extraction and sub-model
    training repeat per monitor.
    """
    raw = _default_session().raw_traces(plan)
    results = {}
    for monitor in monitors:
        bundle = extract_bundle(raw, monitor=monitor)
        results[monitor] = run_detection_experiment(
            bundle, classifier=classifier, method=method
        )
    return results


def four_scenarios(base: ExperimentPlan | None = None) -> dict[str, ExperimentPlan]:
    """The paper's four test scenarios: AODV/DSR x TCP/UDP."""
    base = base if base is not None else ExperimentPlan()
    plans = {}
    for protocol in ("aodv", "dsr"):
        for transport in ("tcp", "udp"):
            plans[f"{protocol}/{transport}"] = replace(
                base, protocol=protocol, transport=transport
            )
    return plans
