"""Score-vs-time curves (Figures 3 and 5).

The paper plots the average-probability output over simulation time for
normal and abnormal traces, averaging multiple traces of the same test
condition into one curve: normal traces stay almost flat, abnormal traces
oscillate and stay depressed after the first intrusion session — the
"failing to completely self-heal" observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ScoreSeries:
    """One averaged curve: score per window end time."""

    times: np.ndarray
    scores: np.ndarray

    def mean_in(self, start: float, end: float) -> float:
        """Mean score over windows ending inside ``[start, end)``.

        The interval is half-open: a window ending exactly at ``start``
        is included, one ending exactly at ``end`` is not.  An empty
        probe names the series' actual coverage — when attribution (or a
        plot) probes an attack session that lies outside the scored
        windows, "no windows" alone is unactionable.
        """
        times = np.asarray(self.times, dtype=float)
        mask = (times >= start) & (times < end)
        if not mask.any():
            if len(times) == 0:
                raise ValueError(
                    f"no windows in [{start:g}, {end:g}): the series is empty"
                )
            raise ValueError(
                f"no windows in [{start:g}, {end:g}): the series covers "
                f"[{times.min():g}, {times.max():g}] "
                f"({len(times)} windows)"
            )
        return float(self.scores[mask].mean())


def averaged_score_series(
    times: np.ndarray, score_runs: list[np.ndarray]
) -> ScoreSeries:
    """Average several runs of the same test condition into one curve.

    All runs must share the window grid ``times`` (the paper averages the
    outcomes of multiple traces per condition).
    """
    times = np.asarray(times, dtype=float)
    if not score_runs:
        raise ValueError("need at least one run")
    stacked = np.vstack([np.asarray(s, dtype=float) for s in score_runs])
    if stacked.shape[1] != len(times):
        raise ValueError("score runs must align with the time grid")
    return ScoreSeries(times=times, scores=stacked.mean(axis=0))


def smoothed(series: ScoreSeries, window: int = 5) -> ScoreSeries:
    """Moving-average smoothing for readability (plot cosmetics only).

    ``window`` must be odd: an even window has no centre sample, so the
    smoothed curve would shift by half a window against its time axis —
    visually displacing attack onsets in the Figure 3/5 plots.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if window % 2 == 0:
        raise ValueError(
            f"window must be odd to stay centred (got {window}); an even "
            f"window shifts the curve half a sample against its times"
        )
    kernel = np.ones(window) / window
    pad = window // 2
    padded = np.pad(series.scores, pad, mode="edge")
    smooth = np.convolve(padded, kernel, mode="valid")[: len(series.scores)]
    return ScoreSeries(times=series.times, scores=smooth)
