"""Textual experiment reports — the paper's result tables as plain text.

Formats :class:`~repro.eval.experiments.DetectionResult` objects into the
report style used throughout the benchmarks (and by ``python -m repro
report``): one row per classifier with AUC, optimal operating point and
the calibrated-threshold operating point.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.eval.experiments import (
    DetectionResult,
    ExperimentPlan,
    run_detection_experiment,
)

_HEADER = f"{'classifier':12s} {'AUC':>7s} {'optimal (r, p)':>16s} {'@threshold (r, p)':>19s}"


def format_result_row(name: str, result: DetectionResult) -> str:
    """One report line for one classifier's result."""
    r_opt, p_opt, _ = result.optimal
    r_thr, p_thr = result.recall_precision_at_threshold()
    return (
        f"{name:12s} {result.auc:7.3f}   ({r_opt:4.2f}, {p_opt:4.2f})"
        f"      ({r_thr:4.2f}, {p_thr:4.2f})"
    )


def format_detection_report(
    results: Mapping[str, DetectionResult],
    title: str = "",
) -> str:
    """A full report block over several classifiers' results."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(_HEADER)))
    lines.append(_HEADER)
    for name, result in results.items():
        lines.append(format_result_row(name, result))
    return "\n".join(lines)


def scenario_report(
    plan: ExperimentPlan,
    classifiers: Sequence[str] = ("c45", "ripper", "nbc"),
    method: str = "calibrated_probability",
    session=None,
) -> str:
    """Run the detection experiment for each classifier and format it.

    Simulations are shared across classifiers via the session's caches,
    so the added cost per classifier is sub-model training only.  Pass a
    :class:`repro.Session` to control parallelism and cache placement;
    the process-wide default session is used otherwise.
    """
    from repro.runtime.session import default_session

    if session is None:
        session = default_session()
    bundle = session.bundle(plan)
    results = {
        name: run_detection_experiment(bundle, classifier=name, method=method)
        for name in classifiers
    }
    title = (
        f"{plan.protocol.upper()}/{plan.transport.upper()}  "
        f"({plan.n_nodes} nodes, {plan.duration:.0f}s, attack={plan.attack_kind})"
    )
    return format_detection_report(results, title=title)
