"""Evaluation harness: the measurements behind the paper's figures.

* :mod:`repro.eval.metrics` — recall/precision curves over threshold
  sweeps, area-above-diagonal AUC and the closest-to-(1,1) optimal point
  (Figures 1-2);
* :mod:`repro.eval.timeseries` — averaged score-vs-time curves for normal
  and abnormal traces (Figures 3 and 5);
* :mod:`repro.eval.density` — score density distributions (Figures 4
  and 6);
* :mod:`repro.eval.experiments` — the end-to-end pipeline: simulate
  traces, extract features, train a detector per scenario/classifier, and
  score evaluation traces.
"""

from repro.eval.density import score_density
from repro.eval.experiments import (
    DetectionResult,
    ExperimentPlan,
    TraceBundle,
    run_detection_experiment,
)
from repro.eval.metrics import (
    PrCurve,
    area_above_diagonal,
    optimal_point,
    precision_recall_curve,
)
from repro.eval.timeseries import averaged_score_series

__all__ = [
    "DetectionResult",
    "ExperimentPlan",
    "PrCurve",
    "TraceBundle",
    "area_above_diagonal",
    "averaged_score_series",
    "optimal_point",
    "precision_recall_curve",
    "run_detection_experiment",
    "score_density",
]
