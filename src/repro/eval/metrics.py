"""Recall-precision analysis (paper §4.2).

With *I* the intrusions and *A* the alarms, recall is ``p(A|I)`` and
precision ``p(I|A)``.  Operating points are obtained by sweeping the
decision threshold over the score range: an event is an alarm iff its
normality score falls *below* the threshold.  The 45-degree diagonal of
the recall-precision plot is the random-guess reference, and the paper
quantifies a curve by the area between it and that diagonal; the "optimal
point" is the operating point closest to perfect (1, 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PrCurve:
    """A recall-precision curve from a threshold sweep.

    ``recalls[k]`` / ``precisions[k]`` is the operating point at
    ``thresholds[k]`` (alarm iff score < threshold).
    """

    thresholds: np.ndarray
    recalls: np.ndarray
    precisions: np.ndarray

    def __len__(self) -> int:
        return len(self.thresholds)


def precision_recall_curve(scores: np.ndarray, labels: np.ndarray) -> PrCurve:
    """Sweep thresholds over normality scores.

    Parameters
    ----------
    scores:
        Normality scores (higher = more normal).
    labels:
        Ground truth, True = intrusion.

    Points with zero alarms are skipped (precision undefined there).
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=bool)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError("scores and labels must be matching 1-D arrays")
    n_intrusions = int(labels.sum())
    if n_intrusions == 0:
        raise ValueError("need at least one intrusion to measure recall")
    if n_intrusions == len(labels):
        raise ValueError("need at least one normal event to measure precision")

    # Sort ascending by score; sweeping the threshold over distinct score
    # values admits every achievable operating point.
    order = np.argsort(scores, kind="stable")
    sorted_scores = scores[order]
    sorted_intrusion = labels[order].astype(float)
    # alarms(θ) = #events with score < θ; take θ just above each distinct score.
    cum_intrusions = np.cumsum(sorted_intrusion)
    positions = np.arange(1, len(scores) + 1, dtype=float)
    # Keep only the last index of each run of equal scores.
    distinct = np.flatnonzero(np.diff(sorted_scores, append=np.inf) > 0)
    alarms = positions[distinct]
    caught = cum_intrusions[distinct]
    # The point "everything with score <= s is an alarm" corresponds to a
    # threshold just above s under the strict alarm rule (score < t).
    thresholds = np.nextafter(sorted_scores[distinct], np.inf)
    recalls = caught / n_intrusions
    precisions = caught / alarms
    return PrCurve(thresholds=thresholds, recalls=recalls, precisions=precisions)


def area_above_diagonal(curve: PrCurve) -> float:
    """Area between the recall-precision curve and the random-guess diagonal.

    The curve is integrated over recall with trapezoids (anchored at
    recall 0 with the first precision and extended to recall 1 with the
    last), and the diagonal's area (0.5) is subtracted.  Positive values
    mean better than random; the maximum is 0.5.
    """
    r = np.concatenate(([0.0], curve.recalls, [1.0]))
    p = np.concatenate(([curve.precisions[0]], curve.precisions, [curve.precisions[-1]]))
    auc = float(np.trapezoid(p, r))
    return auc - 0.5


def optimal_point(curve: PrCurve) -> tuple[float, float, float]:
    """The paper's simplified criterion: the operating point with the
    closest Euclidean distance to (1, 1).

    Returns ``(recall, precision, threshold)``.
    """
    d2 = (1.0 - curve.recalls) ** 2 + (1.0 - curve.precisions) ** 2
    k = int(np.argmin(d2))
    return float(curve.recalls[k]), float(curve.precisions[k]), float(curve.thresholds[k])


def recall_precision_at(scores: np.ndarray, labels: np.ndarray, threshold: float) -> tuple[float, float]:
    """Recall and precision at one fixed threshold (alarm iff score < t).

    ``labels`` must contain at least one intrusion — recall ``p(A|I)`` is
    undefined otherwise, and silently reporting 0.0 would make a
    flawless run on a clean trace indistinguishable from a total miss
    (raises :class:`ValueError`, like :func:`precision_recall_curve`).
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=bool)
    n_intrusions = int(labels.sum())
    if n_intrusions == 0:
        raise ValueError("need at least one intrusion to measure recall")
    alarms = scores < threshold
    recall = float((alarms & labels).sum() / n_intrusions)
    precision = float((alarms & labels).sum() / alarms.sum()) if alarms.any() else 0.0
    return recall, precision
