"""MANET routing protocols: AODV and DSR, as studied by the paper.

Both protocols are implemented from scratch at the granularity the paper's
features observe: on-demand route discovery (RREQ/RREP floods), route
maintenance on link failure (RERR, repair/salvage), table/cache hits, and —
for DSR — promiscuous route learning.  Every route-fabric change is logged
through :class:`repro.simulation.stats.NodeStats` using the five event kinds
of Feature Set I.
"""

from repro.routing.aodv import AODV_MAX_SEQ, AodvProtocol, AodvRouteEntry
from repro.routing.base import PacketBuffer, RoutingProtocol
from repro.routing.dsr import DsrProtocol, RouteCache
from repro.routing.olsr import OlsrProtocol

__all__ = [
    "AODV_MAX_SEQ",
    "AodvProtocol",
    "AodvRouteEntry",
    "DsrProtocol",
    "OlsrProtocol",
    "PacketBuffer",
    "RouteCache",
    "RoutingProtocol",
]
