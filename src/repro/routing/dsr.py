"""Dynamic Source Routing (DSR).

A from-scratch implementation of the protocol as the paper uses it
(Johnson & Maltz 1996, as implemented in ns-2):

* **source routing** — the originator puts the full path in the packet
  header; intermediate nodes relay along it;
* **route cache** — multiple paths per destination, learned from route
  discovery, from forwarding RREPs, and *promiscuously* from overheard
  source-routed packets (the paper's *route notice count* feature);
* **route discovery** — RREQ floods accumulating the traversed path,
  answered by the target or gratuitously from an intermediate cache;
* **route maintenance** — per-hop MAC feedback; on a broken link the
  detecting node sends a ROUTE ERROR back to the source and tries to
  *salvage* the packet with an alternative cached path (the paper's
  *route repair count*).

The cache prefers shorter paths and has no freshness ordering — which is
both why DSR copes well with mobility (many alternatives) and why the
paper's forged two-hop routes poison it so effectively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.base import PacketBuffer, RoutingProtocol
from repro.simulation.node import Node
from repro.simulation.packet import BROADCAST, Direction, Packet, PacketType
from repro.simulation.stats import RouteEventKind


@dataclass(slots=True)
class _CachedPath:
    """A cached path: hops from (but excluding) the owner, ending at dest."""

    path: tuple[int, ...]
    expires: float


class RouteCache:
    """DSR route cache: a few alternative paths per destination.

    Paths are stored from the owner's perspective — a tuple of node ids the
    packet will visit, ending at the destination and excluding ``owner``
    itself.  Lookup returns the shortest unexpired path.
    """

    def __init__(self, owner: int, max_paths_per_dest: int = 3, path_ttl: float = 30.0):
        self.owner = owner
        self.max_paths_per_dest = max_paths_per_dest
        self.path_ttl = path_ttl
        self._paths: dict[int, list[_CachedPath]] = {}

    def add(self, dest: int, path: tuple[int, ...], now: float) -> bool:
        """Cache a path; returns True if it was not already cached."""
        if not path or path[-1] != dest:
            raise ValueError(f"path must end at dest {dest}: {path}")
        entries = self._paths.setdefault(dest, [])
        for cached in entries:
            if cached.path == path:
                cached.expires = now + self.path_ttl
                return False
        entries.append(_CachedPath(path, now + self.path_ttl))
        if len(entries) > self.max_paths_per_dest:
            # Evict the longest path (ties: the stalest).
            entries.sort(key=lambda c: (len(c.path), c.expires))
            del entries[self.max_paths_per_dest :]
        return True

    def get(self, dest: int, now: float) -> tuple[int, ...] | None:
        """Shortest unexpired path to ``dest``, or None."""
        entries = self._paths.get(dest)
        if not entries:
            return None
        best = None
        for cached in entries:
            if cached.expires > now and (best is None or len(cached.path) < len(best)):
                best = cached.path
        return best

    def remove_link(self, a: int, b: int) -> int:
        """Drop every cached path traversing link ``a -> b``; return count."""
        removed = 0
        for dest, entries in self._paths.items():
            keep = []
            for cached in entries:
                full = (self.owner, *cached.path)
                broken = any(
                    full[i] == a and full[i + 1] == b for i in range(len(full) - 1)
                )
                if broken:
                    removed += 1
                else:
                    keep.append(cached)
            self._paths[dest] = keep
        return removed

    def purge(self, now: float) -> int:
        """Drop expired paths; return how many were removed."""
        removed = 0
        for dest, entries in self._paths.items():
            keep = [c for c in entries if c.expires > now]
            removed += len(entries) - len(keep)
            self._paths[dest] = keep
        return removed

    def __len__(self) -> int:
        return sum(len(v) for v in self._paths.values())


class DsrProtocol(RoutingProtocol):
    """DSR routing agent for one node."""

    name = "dsr"

    def __init__(
        self,
        node: Node,
        rreq_timeout: float = 1.0,
        rreq_retries: int = 2,
        net_ttl: int = 16,
        cache_ttl: float = 30.0,
        max_salvage: int = 1,
        gratuitous_replies: bool = True,
        purge_interval: float = 1.0,
        routing_fast: bool | None = None,
    ):
        super().__init__(node, routing_fast)
        node.promiscuous = True  # DSR taps the channel to learn routes
        self.rreq_timeout = rreq_timeout
        self.rreq_retries = rreq_retries
        self.net_ttl = net_ttl
        self.max_salvage = max_salvage
        self.gratuitous_replies = gratuitous_replies
        self.purge_interval = purge_interval

        self.cache = RouteCache(owner=node.node_id, path_ttl=cache_ttl)
        self.rreq_id = 0
        self._forged_rreq_id = 1 << 20
        # Duplicate-RREQ filter stores (see RoutingProtocol._seen_mark).
        self._seen_rreqs: dict[tuple[int, int], float] = {}
        self._seen_by_origin: dict[int, dict[int, float]] = {}
        self._seen_count = 0
        #: Earliest simulation time the next cache purge could remove a
        #: path (fast path only; -inf forces the first scan).
        self._purge_deadline = float("-inf")
        self._buffer = PacketBuffer()
        self._pending: dict[int, int] = {}
        # Packet-type dispatch table (hot path; other types are ignored).
        self._dispatch = {
            PacketType.DATA: self._handle_data,
            PacketType.RREQ: self._handle_rreq,
            PacketType.RREP: self._handle_rrep,
            PacketType.RERR: self._handle_rerr,
        }
        # Flood hot path: RREQ copies arrive once per neighbor per flood,
        # so that one site logs through a channel (C-level append).
        self._rreq_recv = node.stats.packet_channel(
            PacketType.RREQ, Direction.RECEIVED
        )
        self.sim.schedule(self.sim.rng.uniform(0, purge_interval), self._purge_tick)

        if self.routing_fast:
            self._install_fast_path()

    # ------------------------------------------------------------------
    # Cache bookkeeping with Feature Set I logging
    # ------------------------------------------------------------------
    def _learn_path(self, dest: int, path: tuple[int, ...], kind: RouteEventKind) -> None:
        """Cache a path and log it as the given route event if it is new."""
        if dest == self.node_id or not path:
            return
        if len(set(path)) != len(path) or self.node_id in path:
            return  # looping path — never cache
        if self.cache.add(dest, path, self.sim.now):
            self.log_route_event(kind)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send_data(self, packet: Packet) -> None:
        if packet.dest == self.node_id:
            self.node.deliver(packet)
            return
        path = self.cache.get(packet.dest, self.sim.now)
        if path is not None:
            self.log_route_event(RouteEventKind.FIND)
            self._originate_on_path(packet, path)
            return
        evicted = self._buffer.add(packet.dest, packet)
        if evicted is not None:
            self.log_drop(evicted)
        if packet.dest not in self._pending:
            self._start_discovery(packet.dest)

    def _originate_on_path(self, packet: Packet, path: tuple[int, ...]) -> None:
        packet.info["sr"] = [self.node_id, *path]
        packet.info["sr_index"] = 0
        packet.info.setdefault("salvaged", 0)
        self.log_route_length(len(path))
        self._relay_source_routed(packet)

    def _relay_source_routed(self, packet: Packet) -> None:
        """Transmit a source-routed packet to its next hop."""
        sr = packet.info["sr"]
        index = packet.info["sr_index"]
        next_hop = sr[index + 1]
        on_fail = (
            self._on_data_link_fail
            if packet.ptype == PacketType.DATA
            else self._on_control_link_fail
        )
        if not self.node.unicast(packet, next_hop, on_fail):
            self.log_drop(packet)  # interface-queue overflow

    def _handle_data(self, packet: Packet, from_id: int) -> None:
        if self.node.should_drop(packet):
            return  # malicious silent drop
        if packet.dest == self.node_id:
            self.node.deliver(packet)
            return
        packet.ttl -= 1
        packet.hops += 1
        if packet.ttl <= 0:
            self.log_drop(packet)
            return
        relay = packet.copy()
        relay.info["sr_index"] += 1
        sr = relay.info["sr"]
        if relay.info["sr_index"] + 1 >= len(sr):
            self.log_drop(packet)  # malformed source route
            return
        self.log_packet(PacketType.DATA, Direction.FORWARDED)
        self._relay_source_routed(relay)

    # ------------------------------------------------------------------
    # Route discovery
    # ------------------------------------------------------------------
    def _start_discovery(self, dest: int, retries_used: int = 0) -> None:
        self._pending[dest] = retries_used
        self.rreq_id += 1
        packet = Packet(
            ptype=PacketType.RREQ,
            origin=self.node_id,
            dest=BROADCAST,
            size=48,
            ttl=self.net_ttl,
            info={"rreq_id": self.rreq_id, "target": dest, "route": [self.node_id]},
        )
        self._seen_mark(self.node_id, self.rreq_id, self.sim.now)
        self.log_packet(PacketType.RREQ, Direction.SENT)
        self.node.broadcast(packet)
        self.sim.schedule(self.rreq_timeout, self._discovery_timeout, dest, retries_used)

    def _discovery_timeout(self, dest: int, retries_used: int) -> None:
        if dest not in self._pending or self._pending[dest] != retries_used:
            return
        if self.cache.get(dest, self.sim.now) is not None:
            self._discovery_succeeded(dest)
            return
        if retries_used < self.rreq_retries:
            self._start_discovery(dest, retries_used + 1)
            return
        del self._pending[dest]
        for packet in self._buffer.pop_all(dest):
            self.log_drop(packet)

    def _discovery_succeeded(self, dest: int) -> None:
        self._pending.pop(dest, None)
        path = self.cache.get(dest, self.sim.now)
        for packet in self._buffer.pop_all(dest):
            if path is not None:
                self._originate_on_path(packet, path)
            else:
                self.log_drop(packet)

    def _handle_rreq(self, packet: Packet, from_id: int) -> None:
        self._rreq_recv.append(self.sim.now)
        info = packet.info
        origin, rreq_id, target = packet.origin, info["rreq_id"], info["target"]
        accumulated = info["route"]
        # The accumulated record, reversed, is a path back to the originator.
        # This is the mechanism the DSR black-hole script exploits with a
        # forged one-hop record: the reversed bogus path (2 hops, through
        # the attacker) out-competes longer legitimate paths in the cache.
        self._learn_path(origin, tuple(reversed(accumulated)), RouteEventKind.ADD)
        if self._seen_has(origin, rreq_id):
            return
        self._seen_mark(origin, rreq_id, self.sim.now)
        if self.node_id in accumulated:
            return  # already on the record: a loop

        if target == self.node_id:
            full_path = [*accumulated, self.node_id]
            self._send_rrep(origin, target, full_path)
            return
        if self.gratuitous_replies:
            cached = self.cache.get(target, self.sim.now)
            if cached is not None and not (set(cached) & set(accumulated)) and self.node_id not in cached:
                self.log_route_event(RouteEventKind.FIND)
                full_path = [*accumulated, self.node_id, *cached]
                self._send_rrep(origin, target, full_path)
                return
        if packet.ttl <= 1:
            return
        relay = packet.copy()
        relay.ttl -= 1
        relay.hops += 1
        relay.info["route"] = [*accumulated, self.node_id]
        self.log_packet(PacketType.RREQ, Direction.FORWARDED)
        self.node.broadcast(relay)

    def _rreq_fresh(
        self, packet: Packet, origin: int, info: dict, accumulated: list[int]
    ) -> None:
        """Reference tail of :meth:`_handle_rreq` for a first-copy RREQ.

        Everything past the duplicate/loop discards: answer as the target,
        answer gratuitously from the cache, or rebroadcast with this node
        appended to the route record.  Shared verbatim by the reference
        handler's flow and the fast path (which inlines only the discards).
        """
        target = info["target"]
        if target == self.node_id:
            full_path = [*accumulated, self.node_id]
            self._send_rrep(origin, target, full_path)
            return
        if self.gratuitous_replies:
            cached = self.cache.get(target, self.sim.now)
            if cached is not None and not (set(cached) & set(accumulated)) and self.node_id not in cached:
                self.log_route_event(RouteEventKind.FIND)
                full_path = [*accumulated, self.node_id, *cached]
                self._send_rrep(origin, target, full_path)
                return
        if packet.ttl <= 1:
            return
        relay = packet.copy()
        relay.ttl -= 1
        relay.hops += 1
        relay.info["route"] = [*accumulated, self.node_id]
        self.log_packet(PacketType.RREQ, Direction.FORWARDED)
        self.node.broadcast(relay)

    def _send_rrep(self, origin: int, target: int, full_path: list[int]) -> None:
        """Reply with the discovered path, source-routed back to ``origin``.

        ``full_path`` runs origin -> ... -> this node [-> ... -> target].
        """
        my_pos = full_path.index(self.node_id)
        back = list(reversed(full_path[: my_pos + 1]))  # me -> ... -> origin
        packet = Packet(
            ptype=PacketType.RREP,
            origin=self.node_id,
            dest=origin,
            size=44 + 4 * len(full_path),
            ttl=self.net_ttl,
            info={"target": target, "route": list(full_path), "sr": back, "sr_index": 0},
        )
        self.log_packet(PacketType.RREP, Direction.SENT)
        self._relay_source_routed(packet)

    def _handle_rrep(self, packet: Packet, from_id: int) -> None:
        info = packet.info
        route = info["route"]
        target = info["target"]
        if packet.dest == self.node_id:
            self.log_packet(PacketType.RREP, Direction.RECEIVED)
            try:
                my_pos = route.index(self.node_id)
            except ValueError:
                return  # malformed
            self._learn_path(target, tuple(route[my_pos + 1 :]), RouteEventKind.ADD)
            if target in self._pending:
                self._discovery_succeeded(target)
            return
        # Intermediate RREP forwarder: learn the downstream part too.
        if self.node_id in route:
            my_pos = route.index(self.node_id)
            self._learn_path(target, tuple(route[my_pos + 1 :]), RouteEventKind.ADD)
        relay = packet.copy()
        relay.ttl -= 1
        relay.hops += 1
        if relay.ttl <= 0:
            self.log_drop(packet)
            return
        relay.info["sr_index"] += 1
        if relay.info["sr_index"] + 1 >= len(relay.info["sr"]):
            self.log_drop(packet)
            return
        self.log_packet(PacketType.RREP, Direction.FORWARDED)
        self._relay_source_routed(relay)

    # ------------------------------------------------------------------
    # Route maintenance
    # ------------------------------------------------------------------
    def _on_data_link_fail(self, packet: Packet, next_hop: int) -> None:
        removed = self.cache.remove_link(self.node_id, next_hop)
        for _ in range(removed):
            self.log_route_event(RouteEventKind.REMOVAL)
        sr = packet.info["sr"]
        origin = sr[0]
        if origin != self.node_id:
            self._send_rerr(packet, next_hop)
        # Salvage: try an alternative cached path to the destination.
        if packet.info.get("salvaged", 0) < self.max_salvage:
            alt = self.cache.get(packet.dest, self.sim.now)
            if alt is not None and next_hop != alt[0]:
                self.log_route_event(RouteEventKind.REPAIR)
                salvaged = packet.copy()
                salvaged.info["salvaged"] = packet.info.get("salvaged", 0) + 1
                salvaged.info["sr"] = [self.node_id, *alt]
                salvaged.info["sr_index"] = 0
                self._relay_source_routed(salvaged)
                return
        if origin == self.node_id:
            # Source with no alternative: re-discover, holding the packet.
            self.log_route_event(RouteEventKind.REPAIR)
            evicted = self._buffer.add(packet.dest, packet)
            if evicted is not None:
                self.log_drop(evicted)
            if packet.dest not in self._pending:
                self._start_discovery(packet.dest)
            return
        self.log_drop(packet)

    def _on_control_link_fail(self, packet: Packet, next_hop: int) -> None:
        removed = self.cache.remove_link(self.node_id, next_hop)
        for _ in range(removed):
            self.log_route_event(RouteEventKind.REMOVAL)
        self.log_drop(packet)

    def _send_rerr(self, failed_packet: Packet, broken_next_hop: int) -> None:
        """Tell the packet's source that the link to ``broken_next_hop`` died."""
        sr = failed_packet.info["sr"]
        index = failed_packet.info["sr_index"]
        back = list(reversed(sr[: index + 1]))  # me -> ... -> origin
        if len(back) < 2:
            return
        packet = Packet(
            ptype=PacketType.RERR,
            origin=self.node_id,
            dest=sr[0],
            size=32,
            ttl=self.net_ttl,
            info={"broken": (self.node_id, broken_next_hop), "sr": back, "sr_index": 0},
        )
        self.log_packet(PacketType.RERR, Direction.SENT)
        self._relay_source_routed(packet)

    def _handle_rerr(self, packet: Packet, from_id: int) -> None:
        a, b = packet.info["broken"]
        removed = self.cache.remove_link(a, b)
        for _ in range(removed):
            self.log_route_event(RouteEventKind.REMOVAL)
        if packet.dest in (self.node_id, BROADCAST):
            # Addressed to us, or a one-hop advisory broadcast: terminal.
            self.log_packet(PacketType.RERR, Direction.RECEIVED)
            return
        relay = packet.copy()
        relay.ttl -= 1
        relay.hops += 1
        if relay.ttl <= 0:
            self.log_drop(packet)
            return
        relay.info["sr_index"] += 1
        if relay.info["sr_index"] + 1 >= len(relay.info["sr"]):
            self.log_drop(packet)
            return
        self.log_packet(PacketType.RERR, Direction.FORWARDED)
        self._relay_source_routed(relay)

    # ------------------------------------------------------------------
    # Promiscuous learning — the *route notice count* feature
    # ------------------------------------------------------------------
    def handle_overhear(self, packet: Packet, from_id: int) -> None:
        sr = packet.info.get("sr")
        if not sr or self.node_id in sr:
            return
        try:
            pos = sr.index(from_id)
        except ValueError:
            return
        # from_id is in range of us, so [from_id, ...rest of the path] is a
        # usable path from here to the packet's final source-route hop.
        path = tuple(sr[pos:])
        if len(path) >= 2:
            self._learn_path(path[-1], path, RouteEventKind.NOTICE)

    # ------------------------------------------------------------------
    # Periodic machinery
    # ------------------------------------------------------------------
    def _purge_tick(self) -> None:
        now = self.sim.now
        if not self.routing_fast:
            # Reference scan: walk the whole cache every tick.
            removed = self.cache.purge(now)
            for _ in range(removed):
                self.log_route_event(RouteEventKind.REMOVAL)
        elif now >= self._purge_deadline:
            # A purge only removes paths with expires <= now, and between
            # scans a path's expiry only moves up (cache.add refreshes;
            # new paths expire a full TTL out; remove_link only deletes).
            # So the minimum expiry seen at a scan bounds the next tick
            # that could do anything, and earlier ticks skip bit-identically.
            deadline = now + self.cache.path_ttl
            removed = 0
            paths = self.cache._paths
            for dest, entries in paths.items():
                keep = [c for c in entries if c.expires > now]
                removed += len(entries) - len(keep)
                paths[dest] = keep
                for cached in keep:
                    if cached.expires < deadline:
                        deadline = cached.expires
            self._purge_deadline = deadline
            for _ in range(removed):
                self.log_route_event(RouteEventKind.REMOVAL)
        self._seen_prune(now)
        self.sim.schedule(self.purge_interval, self._purge_tick)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet, from_id: int) -> None:
        handler = self._dispatch.get(packet.ptype)
        if handler is not None:
            handler(packet, from_id)

    # ------------------------------------------------------------------
    # Routing fast path (REPRO_ROUTING_FAST; see DESIGN.md)
    # ------------------------------------------------------------------
    def _install_fast_path(self) -> None:
        """Swap in flattened per-type handlers for the delivery hot path.

        Mirrors :meth:`AodvProtocol._install_fast_path`: the RREQ and DATA
        handlers — the two types that arrive once per neighbor per flood /
        per hop — run their cheap-discard decisions in one Python frame
        with hot state bound as closure locals, delegating to the cold
        reference helpers (:meth:`_rreq_fresh`, link-failure maintenance)
        the moment a packet stops being cheap.  RREP/RERR stay on the
        reference handlers.  Bit-identity is asserted by the trace
        equivalence matrix and the Hypothesis property suite.
        """
        sim = self.sim
        node = self.node
        node_id = self.node_id
        seen = self._seen_by_origin
        rreq_chan = self._rreq_recv
        cache_paths = self.cache._paths
        path_ttl = self.cache.path_ttl
        max_paths = self.cache.max_paths_per_dest
        path_cls = _CachedPath
        evict_key = lambda c: (len(c.path), c.expires)  # noqa: E731
        log_route_event = self.log_route_event
        log_packet = self.log_packet
        log_drop = self.log_drop
        deliver = node.deliver
        unicast = node.unicast
        on_data_fail = self._on_data_link_fail
        rreq_fresh = self._rreq_fresh
        ADD = RouteEventKind.ADD
        DATA = PacketType.DATA
        FORWARDED = Direction.FORWARDED

        def rreq_fast(packet: Packet, from_id: int) -> None:
            now = sim.now
            rreq_chan.append(now)
            info = packet.info
            origin = packet.origin
            accumulated = info["route"]
            # Inlined _learn_path(origin, reversed record, ADD) — including
            # the cache.add dedup/refresh/evict scan, so duplicate flood
            # copies (which still refresh the cached back-path) stay in
            # this frame.
            if origin != node_id and accumulated:
                path = tuple(reversed(accumulated))
                if len(set(path)) == len(path) and node_id not in path:
                    entries = cache_paths.get(origin)
                    if entries is None:
                        cache_paths[origin] = [path_cls(path, now + path_ttl)]
                        log_route_event(ADD)
                    else:
                        for cached in entries:
                            if cached.path == path:
                                cached.expires = now + path_ttl
                                break
                        else:
                            entries.append(path_cls(path, now + path_ttl))
                            if len(entries) > max_paths:
                                entries.sort(key=evict_key)
                                del entries[max_paths:]
                            log_route_event(ADD)
            rreq_id = info["rreq_id"]
            d = seen.get(origin)
            if d is None:
                seen[origin] = {rreq_id: now}
                self._seen_count += 1
            elif rreq_id in d:
                return  # duplicate flood copy: discarded right here
            else:
                d[rreq_id] = now
                self._seen_count += 1
            if node_id in accumulated:
                return  # already on the record: a loop
            rreq_fresh(packet, origin, info, accumulated)

        def data_fast(packet: Packet, from_id: int) -> None:
            drop_filter = node.drop_filter
            if drop_filter is not None and drop_filter(packet):
                return  # malicious silent drop — no trace at the attacker
            if packet.dest == node_id:
                deliver(packet)
                return
            packet.ttl -= 1
            packet.hops += 1
            if packet.ttl <= 0:
                log_drop(packet)
                return
            relay = packet.copy()
            relay_info = relay.info
            index = relay_info["sr_index"] + 1
            relay_info["sr_index"] = index
            sr = relay_info["sr"]
            if index + 1 >= len(sr):
                log_drop(packet)  # malformed source route
                return
            log_packet(DATA, FORWARDED)
            # Inlined _relay_source_routed for a DATA relay.
            if not unicast(relay, sr[index + 1], on_data_fail):
                log_drop(relay)  # interface-queue overflow
            return

        typed = {
            PacketType.DATA: data_fast,
            PacketType.RREQ: rreq_fast,
            PacketType.RREP: self._handle_rrep,
            PacketType.RERR: self._handle_rerr,
        }
        typed_get = typed.get

        def handle_packet_fast(packet: Packet, from_id: int) -> None:
            handler = typed_get(packet.ptype)
            if handler is not None:
                handler(packet, from_id)

        self.typed_handlers = typed
        self.handle_packet = handle_packet_fast
        node.refresh_dispatch()

    # ------------------------------------------------------------------
    # Attack surface (called only by repro.attacks)
    # ------------------------------------------------------------------
    def forge_route_advert(self, victim: int) -> Packet:
        """Build the black-hole forged RREQ of §4.1 / Table 6 for DSR.

        The bogus request claims ``victim`` originated it and that this
        node forwarded it as the victim's immediate neighbor (route record
        ``[victim, attacker]``).  Every node processing the flood caches
        the reversed record — a two-hop path to the victim through the
        attacker that out-competes longer legitimate paths.

        The requested destination is "selected" (paper §4.1) — the
        poisoning works through the route record alone — and the attacker
        selects one no node can answer from its cache, so no gratuitous
        reply suppresses the rebroadcast and the request floods the whole
        network.
        """
        self._forged_rreq_id += 1
        return Packet(
            ptype=PacketType.RREQ,
            origin=victim,
            dest=BROADCAST,
            size=48,
            ttl=self.net_ttl,
            hops=1,
            info={
                "rreq_id": self._forged_rreq_id,
                "target": (1 << 16) + victim,  # a destination that cannot exist
                "route": [victim, self.node_id],
            },
        )
