"""Ad-hoc On-demand Distance Vector routing (AODV).

A from-scratch implementation of the protocol as the paper uses it
(Perkins & Royer 1999, as implemented in ns-2):

* per-destination route table entries ``(next hop, hop count, destination
  sequence number, lifetime)``;
* reactive route discovery — RREQ floods answered by RREPs from the
  destination or from intermediate nodes holding a fresh-enough route;
* route maintenance — HELLO-based neighbor liveness, RERR propagation and
  local repair on link failure;
* freshness ordering by destination sequence number, then hop count.

The sequence-number ordering is exactly what the paper's black-hole script
abuses: a forged advertisement carrying the maximum sequence number wins
against every legitimate route and — as the paper observes — is never
displaced afterwards.  :meth:`AodvProtocol.forge_route_advert` builds that
forged RREQ; only the attack modules call it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.base import PacketBuffer, RoutingProtocol
from repro.simulation.node import Node
from repro.simulation.packet import BROADCAST, Direction, Packet, PacketType
from repro.simulation.stats import RouteEventKind

AODV_MAX_SEQ = 2**32 - 1
"""Maximum destination sequence number — the black-hole attack's weapon."""


@dataclass(slots=True)
class AodvRouteEntry:
    """One row of the AODV route table."""

    dest: int
    next_hop: int
    hops: int
    seq: int
    expires: float
    valid: bool = True

    def fresher_than(self, seq: int, hops: int) -> bool:
        """RFC 3561 §6.2 ordering: higher seq wins, then lower hop count.

        Sequence comparison applies even to invalidated entries — a node
        must never accept stale routing information.  This destination-
        sequence memory is the mechanism the black-hole attack turns into
        permanent damage: a poisoned maximum sequence number rejects every
        legitimate update forever (the paper's §4.2 observation that the
        network "never rectifies" after the attack).
        """
        if self.seq != seq:
            return self.seq > seq
        if not self.valid:
            return False
        return self.hops <= hops


class AodvProtocol(RoutingProtocol):
    """AODV routing agent for one node."""

    name = "aodv"

    def __init__(
        self,
        node: Node,
        hello_interval: float = 1.0,
        allowed_hello_loss: int = 3,
        active_route_timeout: float = 10.0,
        rreq_timeout: float = 1.0,
        rreq_retries: int = 2,
        net_ttl: int = 16,
        purge_interval: float = 1.0,
        routing_fast: bool | None = None,
    ):
        super().__init__(node, routing_fast)
        self.hello_interval = hello_interval
        self.allowed_hello_loss = allowed_hello_loss
        self.active_route_timeout = active_route_timeout
        self.rreq_timeout = rreq_timeout
        self.rreq_retries = rreq_retries
        self.net_ttl = net_ttl
        self.purge_interval = purge_interval

        self.table: dict[int, AodvRouteEntry] = {}
        #: Destination-sequence memory that outlives purged table entries
        #: (ns-2 behaviour; see :meth:`AodvRouteEntry.fresher_than`).
        self._seq_memory: dict[int, int] = {}
        self.seq = 0
        self.rreq_id = 0
        self._forged_rreq_id = 1 << 20  # distinct id space for forged adverts
        #: Reference duplicate-RREQ filter: one dict keyed by the
        #: ``(origin, rreq_id)`` tuple (the live structure when
        #: ``routing_fast`` is off).
        self._seen_rreqs: dict[tuple[int, int], float] = {}
        #: Fast-path duplicate-RREQ filter: per-origin dicts keyed by the
        #: (small-int) rreq id, so the hot membership test never allocates
        #: or hashes a tuple.  Same membership answers, same purge
        #: decisions — ``_seen_count`` tracks the total so the >512 purge
        #: trigger matches the reference dict's ``len()``.
        self._seen_by_origin: dict[int, dict[int, float]] = {}
        self._seen_count = 0
        #: Earliest simulation time the next purge scan could have any
        #: effect (fast path only; -inf forces the first scan).
        self._purge_deadline = float("-inf")
        self._buffer = PacketBuffer()
        self._pending: dict[int, int] = {}  # dest -> retries used
        self._last_heard: dict[int, float] = {}
        # Packet-type dispatch table (hot path; other types are ignored).
        self._dispatch = {
            PacketType.DATA: self._handle_data,
            PacketType.RREQ: self._handle_rreq,
            PacketType.RREP: self._handle_rrep,
            PacketType.RERR: self._handle_rerr,
            PacketType.HELLO: self._handle_hello,
        }
        self._dispatch_get = self._dispatch.get
        # Flood-volume logging channels: these three sites fire once per
        # delivered broadcast copy, so they bypass the log_packet frame
        # (see NodeStats.packet_channel — listener semantics preserved).
        packet_channel = node.stats.packet_channel
        self._rreq_recv = packet_channel(PacketType.RREQ, Direction.RECEIVED)
        self._rerr_recv = packet_channel(PacketType.RERR, Direction.RECEIVED)
        self._hello_recv = packet_channel(PacketType.HELLO, Direction.RECEIVED)

        # Periodic machinery: jittered starts avoid network-wide phase lock.
        self.sim.schedule(self.sim.rng.uniform(0, hello_interval), self._hello_tick)
        self.sim.schedule(self.sim.rng.uniform(0, purge_interval), self._purge_tick)

        if self.routing_fast:
            self._install_fast_path()

    # ------------------------------------------------------------------
    # Route table
    # ------------------------------------------------------------------
    def _update_route(self, dest: int, next_hop: int, hops: int, seq: int) -> bool:
        """Install a route if it is fresher than what the table holds.

        Returns True when the table changed; a genuinely *new* (or revived)
        route is logged as a route-add event for Feature Set I.
        """
        if dest == self.node_id:
            return False
        expires = self.sim.now + self.active_route_timeout
        table = self.table
        entry = table.get(dest)
        was_valid = False
        if entry is not None:
            # Inlined AodvRouteEntry.fresher_than (see its docstring for
            # the RFC 3561 §6.2 ordering this implements).
            eseq = entry.seq
            was_valid = entry.valid
            if (eseq > seq) if eseq != seq else (was_valid and entry.hops <= hops):
                if was_valid and entry.expires < expires:
                    entry.expires = expires
                return False
        memory = self._seq_memory
        known = memory.get(dest, -1)
        if known > seq:
            return False  # stale information: a purged entry knew better
        table[dest] = AodvRouteEntry(dest, next_hop, hops, seq, expires)
        if known < seq:
            memory[dest] = seq
        if not was_valid:
            self.log_route_event(RouteEventKind.ADD)
        return True

    def _valid_route(self, dest: int) -> AodvRouteEntry | None:
        entry = self.table.get(dest)
        if entry is not None and entry.valid and entry.expires > self.sim.now:
            return entry
        return None

    def _invalidate(self, entry: AodvRouteEntry) -> None:
        if entry.valid:
            entry.valid = False
            entry.seq += 1  # RFC: increment on invalidation
            self._seq_memory[entry.dest] = max(
                self._seq_memory.get(entry.dest, -1), entry.seq
            )
            self.log_route_event(RouteEventKind.REMOVAL)

    def _refresh(self, dest: int) -> None:
        entry = self.table.get(dest)
        if entry is not None and entry.valid:
            entry.expires = max(entry.expires, self.sim.now + self.active_route_timeout)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send_data(self, packet: Packet) -> None:
        if packet.dest == self.node_id:
            self.node.deliver(packet)
            return
        entry = self._valid_route(packet.dest)
        if entry is not None:
            self.log_route_event(RouteEventKind.FIND)
            self._transmit_data(packet, entry)
            return
        evicted = self._buffer.add(packet.dest, packet)
        if evicted is not None:
            self.log_drop(evicted)
        if packet.dest not in self._pending:
            self._start_discovery(packet.dest)

    def _transmit_data(self, packet: Packet, entry: AodvRouteEntry) -> None:
        self.log_route_length(entry.hops)
        self._refresh(entry.dest)
        if not self.node.unicast(packet, entry.next_hop, self._on_data_link_fail):
            self.log_drop(packet)  # interface-queue overflow

    def _handle_data(self, packet: Packet, from_id: int) -> None:
        if self.node.should_drop(packet):
            return  # malicious silent drop — no trace at the attacker
        if packet.dest == self.node_id:
            self.node.deliver(packet)
            return
        packet.ttl -= 1
        packet.hops += 1
        if packet.ttl <= 0:
            self.log_drop(packet)
            return
        entry = self._valid_route(packet.dest)
        if entry is None:
            self.log_drop(packet)
            self._send_rerr([packet.dest])
            return
        self.log_packet(PacketType.DATA, Direction.FORWARDED)
        self._refresh(packet.origin)
        self._transmit_data(packet, entry)

    # ------------------------------------------------------------------
    # Route discovery
    # ------------------------------------------------------------------
    def _start_discovery(self, dest: int, retries_used: int = 0) -> None:
        self._pending[dest] = retries_used
        self.seq += 1
        self.rreq_id += 1
        entry = self.table.get(dest)
        # Request at least the remembered sequence number so the
        # destination catches its own counter up (RFC 3561 §6.6.1) and its
        # reply is not rejected as stale by our own sequence memory.
        known_seq = max(
            entry.seq if entry is not None else 0,
            self._seq_memory.get(dest, 0),
        )
        packet = Packet(
            ptype=PacketType.RREQ,
            origin=self.node_id,
            dest=BROADCAST,
            size=48,
            ttl=self.net_ttl,
            info={
                "rreq_id": self.rreq_id,
                "origin_seq": self.seq,
                "target": dest,
                "target_seq": known_seq,
            },
        )
        self._seen_mark(self.node_id, self.rreq_id, self.sim.now)
        self.log_packet(PacketType.RREQ, Direction.SENT)
        self.node.broadcast(packet)
        self.sim.schedule(self.rreq_timeout, self._discovery_timeout, dest, retries_used)

    def _discovery_timeout(self, dest: int, retries_used: int) -> None:
        if dest not in self._pending or self._pending[dest] != retries_used:
            return  # discovery already completed or superseded
        if self._valid_route(dest) is not None:
            self._discovery_succeeded(dest)
            return
        if retries_used < self.rreq_retries:
            self._start_discovery(dest, retries_used + 1)
            return
        del self._pending[dest]
        for packet in self._buffer.pop_all(dest):
            self.log_drop(packet)
        # Discovery (or local repair) ultimately failed: tell the
        # neighbourhood the destination is unreachable (RFC 3561 §6.12).
        self._send_rerr([dest])

    def _discovery_succeeded(self, dest: int) -> None:
        self._pending.pop(dest, None)
        entry = self._valid_route(dest)
        for packet in self._buffer.pop_all(dest):
            if entry is not None:
                self._transmit_data(packet, entry)
            else:  # route vanished between checks
                self.log_drop(packet)

    def _handle_rreq(self, packet: Packet, from_id: int) -> None:
        # Flood hot path: one C-level append per copy via the channel.
        self._rreq_recv.append(self.sim.now)
        info = packet.info
        origin, rreq_id = packet.origin, info["rreq_id"]
        # Reverse route toward the originator (possibly forged — the table
        # cannot tell, which is exactly the black hole's lever).
        self._update_route(origin, from_id, packet.hops + 1, info["origin_seq"])
        if self._seen_has(origin, rreq_id):
            return
        self._seen_mark(origin, rreq_id, self.sim.now)

        if origin == self.node_id:
            return  # our own request echoed back (or forged in our name)

        target = info["target"]
        if target == self.node_id:
            # RFC 3561 §6.6.1: increment own sequence number only when the
            # request asks for exactly own+1 — never jump to an arbitrary
            # requested value.  This is why a forged maximum sequence
            # number is never "caught up to" and the poisoning persists.
            if info["target_seq"] == self.seq + 1:
                self.seq += 1
            self._send_rrep(origin, target, dest_seq=self.seq, dest_hops=0)
            return
        entry = self._valid_route(target)
        if (
            not info.get("destination_only", False)
            and entry is not None
            and entry.seq >= info["target_seq"]
        ):
            # Intermediate reply from the route table — a cache hit.
            self.log_route_event(RouteEventKind.FIND)
            self._send_rrep(origin, target, dest_seq=entry.seq, dest_hops=entry.hops)
            return
        if packet.ttl <= 1:
            return
        relay = packet.copy()
        relay.ttl -= 1
        relay.hops += 1
        self._stats_log_packet(self.sim.now, PacketType.RREQ, Direction.FORWARDED)
        self.node.broadcast(relay)

    def _rreq_fresh(self, packet: Packet, from_id: int, origin: int, info: dict) -> None:
        """First-seen RREQ continuation (the fast handler's cold tail).

        Verbatim the reference :meth:`_handle_rreq` from the own-echo check
        onward; the fast handler has already logged the receive, refreshed
        the reverse route and marked the request as seen.
        """
        if origin == self.node_id:
            return  # our own request echoed back (or forged in our name)

        target = info["target"]
        if target == self.node_id:
            if info["target_seq"] == self.seq + 1:
                self.seq += 1
            self._send_rrep(origin, target, dest_seq=self.seq, dest_hops=0)
            return
        entry = self._valid_route(target)
        if (
            not info.get("destination_only", False)
            and entry is not None
            and entry.seq >= info["target_seq"]
        ):
            self.log_route_event(RouteEventKind.FIND)
            self._send_rrep(origin, target, dest_seq=entry.seq, dest_hops=entry.hops)
            return
        if packet.ttl <= 1:
            return
        relay = packet.copy()
        relay.ttl -= 1
        relay.hops += 1
        self._stats_log_packet(self.sim.now, PacketType.RREQ, Direction.FORWARDED)
        self.node.broadcast(relay)

    def _send_rrep(self, origin: int, target: int, dest_seq: int, dest_hops: int) -> None:
        reverse = self._valid_route(origin)
        if reverse is None:
            return  # reverse path already gone; originator will retry
        packet = Packet(
            ptype=PacketType.RREP,
            origin=self.node_id,
            dest=origin,
            size=44,
            ttl=self.net_ttl,
            info={"target": target, "dest_seq": dest_seq, "hop_count": dest_hops},
        )
        self.log_packet(PacketType.RREP, Direction.SENT)
        self.node.unicast(packet, reverse.next_hop, self._on_control_link_fail)

    def _handle_rrep(self, packet: Packet, from_id: int) -> None:
        info = packet.info
        info["hop_count"] += 1
        self._update_route(info["target"], from_id, info["hop_count"], info["dest_seq"])
        if packet.dest == self.node_id:
            self.log_packet(PacketType.RREP, Direction.RECEIVED)
            if info["target"] in self._pending:
                self._discovery_succeeded(info["target"])
            return
        reverse = self._valid_route(packet.dest)
        if reverse is None:
            self.log_drop(packet)
            return
        self.log_packet(PacketType.RREP, Direction.FORWARDED)
        self.node.unicast(packet, reverse.next_hop, self._on_control_link_fail)

    # ------------------------------------------------------------------
    # Route maintenance
    # ------------------------------------------------------------------
    def _on_data_link_fail(self, packet: Packet, next_hop: int) -> None:
        """A data transmission to ``next_hop`` got no MAC acknowledgement."""
        broken = self._break_link(next_hop)
        if packet.dest == self.node_id:
            return
        # Local repair: hold the packet and re-discover its destination.
        self.log_route_event(RouteEventKind.REPAIR)
        evicted = self._buffer.add(packet.dest, packet)
        if evicted is not None:
            self.log_drop(evicted)
        if packet.dest not in self._pending:
            self._start_discovery(packet.dest)
        others = [d for d in broken if d != packet.dest]
        if others:
            self._send_rerr(others)

    def _on_control_link_fail(self, packet: Packet, next_hop: int) -> None:
        self._break_link(next_hop)
        self.log_drop(packet)

    def _break_link(self, next_hop: int) -> list[int]:
        """Invalidate every route using ``next_hop``; return their dests."""
        broken = []
        for entry in self.table.values():
            if entry.valid and entry.next_hop == next_hop:
                self._invalidate(entry)
                broken.append(entry.dest)
        self._last_heard.pop(next_hop, None)
        return broken

    def _send_rerr(self, dests: list[int]) -> None:
        unreachable = []
        for dest in dests:
            entry = self.table.get(dest)
            unreachable.append((dest, entry.seq if entry is not None else 0))
        packet = Packet(
            ptype=PacketType.RERR,
            origin=self.node_id,
            dest=BROADCAST,
            size=32,
            ttl=1,
            info={"unreachable": unreachable},
        )
        self.log_packet(PacketType.RERR, Direction.SENT)
        self.node.broadcast(packet)

    def _handle_rerr(self, packet: Packet, from_id: int) -> None:
        self._rerr_recv.append(self.sim.now)
        # Routes are invalidated when their next hop is the node
        # *announcing* the error — the packet's origin, i.e. its network-
        # layer source.  For honest RERRs that is also the link-layer
        # sender; the distinction is exactly what identity impersonation
        # forges (§2.3: addresses "are easy to be forged ... if the
        # underlying communication channel is not encrypted").
        announcer = packet.origin
        invalidated = []
        for dest, seq in packet.info["unreachable"]:
            entry = self.table.get(dest)
            if entry is not None and entry.valid and entry.next_hop == announcer:
                self._invalidate(entry)
                invalidated.append((dest, entry.seq))
        if invalidated:
            self._relay_rerr(packet, invalidated)

    def _relay_rerr(self, packet: Packet, invalidated: list[tuple[int, int]]) -> None:
        """Re-originate an RERR whose unreachable list invalidated routes."""
        relay = packet.copy()
        relay.origin = self.node_id  # propagation is re-originated
        relay.info["unreachable"] = invalidated
        self.log_packet(PacketType.RERR, Direction.FORWARDED)
        self.node.broadcast(relay)

    # ------------------------------------------------------------------
    # HELLO / periodic machinery
    # ------------------------------------------------------------------
    def _hello_tick(self) -> None:
        now = self.sim.now
        if any(e.valid for e in self.table.values()):
            packet = Packet(
                ptype=PacketType.HELLO,
                origin=self.node_id,
                dest=BROADCAST,
                size=32,
                ttl=1,
                info={"seq": self.seq},
            )
            self.log_packet(PacketType.HELLO, Direction.SENT)
            self.node.broadcast(packet)
        # Neighbor liveness: silence beyond the allowance breaks the link.
        deadline = now - self.allowed_hello_loss * self.hello_interval
        for neighbor, last in list(self._last_heard.items()):
            if last < deadline:
                broken = self._break_link(neighbor)
                if broken:
                    self._send_rerr(broken)
        self.sim.schedule(self.hello_interval, self._hello_tick)

    def _handle_hello(self, packet: Packet, from_id: int) -> None:
        self._hello_recv.append(self.sim.now)
        self._update_route(from_id, from_id, 1, packet.info["seq"])

    def _purge_tick(self) -> None:
        now = self.sim.now
        if not self.routing_fast:
            # Reference scan: walk the whole table every tick.
            for entry in list(self.table.values()):
                if entry.valid and entry.expires <= now:
                    self._invalidate(entry)
                elif not entry.valid and entry.expires <= now - 3 * self.active_route_timeout:
                    del self.table[entry.dest]
        elif now >= self._purge_deadline:
            # Fast scan with a deadline watermark: a scan can only act on an
            # entry at its expiry (valid) or expiry + 3*ART (invalid), and
            # between scans those action times only move later — refreshes
            # and invalidations raise them, and any entry installed after a
            # scan at t_s expires no earlier than t_s + ART.  So ticks
            # before min(action times, t_s + ART) are provably no-ops and
            # the reference's every-tick walk can be skipped bit-identically.
            art = self.active_route_timeout
            hold = 3 * art
            deadline = now + art
            for entry in list(self.table.values()):
                if entry.valid:
                    if entry.expires <= now:
                        self._invalidate(entry)
                        t = entry.expires + hold
                    else:
                        t = entry.expires
                elif entry.expires <= now - hold:
                    del self.table[entry.dest]
                    continue
                else:
                    t = entry.expires + hold
                if t < deadline:
                    deadline = t
            self._purge_deadline = deadline
        self._seen_prune(now)
        self.sim.schedule(self.purge_interval, self._purge_tick)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet, from_id: int) -> None:
        self._last_heard[from_id] = self.sim.now
        handler = self._dispatch_get(packet.ptype)
        if handler is not None:
            handler(packet, from_id)

    # ------------------------------------------------------------------
    # Routing fast path (REPRO_ROUTING_FAST; see DESIGN.md)
    # ------------------------------------------------------------------
    def _install_fast_path(self) -> None:
        """Swap in flattened per-type handlers for the delivery hot path.

        Each closure binds its hot state (route table, sequence memory,
        per-origin seen dicts, stats channels, timeouts) once as closure
        locals, executes the reference handler's exact decision sequence in
        a single Python frame, and delegates to the cold reference helpers
        as soon as a packet stops being a cheap case.  The map is published
        as ``typed_handlers`` so broadcast fan-out binds the type-specific
        handler per batch instead of re-dispatching per delivery.
        Bit-identity with the reference handlers is asserted by the trace
        equivalence matrix and the Hypothesis property suite.
        """
        sim = self.sim
        node = self.node
        node_id = self.node_id
        table = self.table
        table_get = table.get
        memory = self._seq_memory
        memory_get = memory.get
        last_heard = self._last_heard
        seen = self._seen_by_origin
        seen_get = seen.get
        rreq_chan = self._rreq_recv
        rerr_chan = self._rerr_recv
        hello_chan = self._hello_recv
        art = self.active_route_timeout
        entry_cls = AodvRouteEntry
        log_route_event = self.log_route_event
        log_drop = self.log_drop
        log_packet = self.log_packet
        deliver = node.deliver
        invalidate = self._invalidate
        transmit = self._transmit_data
        rreq_fresh = self._rreq_fresh
        handle_rrep = self._handle_rrep
        ADD = RouteEventKind.ADD
        DATA = PacketType.DATA
        FORWARDED = Direction.FORWARDED

        def rreq_fast(packet: Packet, from_id: int) -> None:
            now = sim.now
            last_heard[from_id] = now
            rreq_chan.append(now)
            info = packet.info
            origin = packet.origin
            if origin != node_id:
                # Inlined _update_route(origin, from_id, packet.hops + 1,
                # info["origin_seq"]): same decisions, same float values.
                seq = info["origin_seq"]
                entry = table_get(origin)
                if entry is not None:
                    eseq = entry.seq
                    was_valid = entry.valid
                    if (
                        (eseq > seq)
                        if eseq != seq
                        else (was_valid and entry.hops <= packet.hops + 1)
                    ):
                        if was_valid:
                            expires = now + art
                            if entry.expires < expires:
                                entry.expires = expires
                    else:
                        known = memory_get(origin, -1)
                        if known <= seq:
                            table[origin] = entry_cls(
                                origin, from_id, packet.hops + 1, seq, now + art
                            )
                            if known < seq:
                                memory[origin] = seq
                            if not was_valid:
                                log_route_event(ADD)
                else:
                    known = memory_get(origin, -1)
                    if known <= seq:
                        table[origin] = entry_cls(
                            origin, from_id, packet.hops + 1, seq, now + art
                        )
                        if known < seq:
                            memory[origin] = seq
                        log_route_event(ADD)
            rreq_id = info["rreq_id"]
            d = seen_get(origin)
            if d is None:
                seen[origin] = {rreq_id: now}
                self._seen_count += 1
            elif rreq_id in d:
                return  # duplicate flood copy: discarded right here
            else:
                d[rreq_id] = now
                self._seen_count += 1
            rreq_fresh(packet, from_id, origin, info)

        def hello_fast(packet: Packet, from_id: int) -> None:
            now = sim.now
            last_heard[from_id] = now
            hello_chan.append(now)
            if from_id == node_id:
                return
            # Inlined _update_route(from_id, from_id, 1, info["seq"]).
            seq = packet.info["seq"]
            entry = table_get(from_id)
            if entry is not None:
                eseq = entry.seq
                was_valid = entry.valid
                if (eseq > seq) if eseq != seq else (was_valid and entry.hops <= 1):
                    if was_valid:
                        expires = now + art
                        if entry.expires < expires:
                            entry.expires = expires
                    return
            else:
                was_valid = False
            known = memory_get(from_id, -1)
            if known > seq:
                return
            table[from_id] = entry_cls(from_id, from_id, 1, seq, now + art)
            if known < seq:
                memory[from_id] = seq
            if not was_valid:
                log_route_event(ADD)

        def rerr_fast(packet: Packet, from_id: int) -> None:
            now = sim.now
            last_heard[from_id] = now
            rerr_chan.append(now)
            announcer = packet.origin
            invalidated = None
            for dest, _seq in packet.info["unreachable"]:
                entry = table_get(dest)
                if entry is not None and entry.valid and entry.next_hop == announcer:
                    invalidate(entry)
                    if invalidated is None:
                        invalidated = [(dest, entry.seq)]
                    else:
                        invalidated.append((dest, entry.seq))
            if invalidated:
                self._relay_rerr(packet, invalidated)

        def data_fast(packet: Packet, from_id: int) -> None:
            now = sim.now
            last_heard[from_id] = now
            drop_filter = node.drop_filter
            if drop_filter is not None and drop_filter(packet):
                return  # malicious silent drop — no trace at the attacker
            if packet.dest == node_id:
                deliver(packet)
                return
            packet.ttl -= 1
            packet.hops += 1
            if packet.ttl <= 0:
                log_drop(packet)
                return
            entry = table_get(packet.dest)
            if entry is None or not entry.valid or entry.expires <= now:
                log_drop(packet)
                self._send_rerr([packet.dest])
                return
            log_packet(DATA, FORWARDED)
            # Inlined _refresh(packet.origin).
            oentry = table_get(packet.origin)
            if oentry is not None and oentry.valid:
                expires = now + art
                if oentry.expires < expires:
                    oentry.expires = expires
            transmit(packet, entry)

        def rrep_fast(packet: Packet, from_id: int) -> None:
            last_heard[from_id] = sim.now
            handle_rrep(packet, from_id)

        typed = {
            PacketType.RREQ: rreq_fast,
            PacketType.HELLO: hello_fast,
            PacketType.RERR: rerr_fast,
            PacketType.DATA: data_fast,
            PacketType.RREP: rrep_fast,
        }
        typed_get = typed.get

        def handle_packet_fast(packet: Packet, from_id: int) -> None:
            handler = typed_get(packet.ptype)
            if handler is not None:
                handler(packet, from_id)
            else:
                # Unknown type: the reference still records liveness.
                last_heard[from_id] = sim.now

        self.typed_handlers = typed
        self.handle_packet = handle_packet_fast
        node.refresh_dispatch()

    # ------------------------------------------------------------------
    # Attack surface (called only by repro.attacks)
    # ------------------------------------------------------------------
    def forge_route_advert(self, victim: int) -> Packet:
        """Build the black-hole forged RREQ of §4.1 / Table 6.

        The bogus request names ``victim`` as both source and target,
        carries the maximum allowed sequence number and claims this node is
        the victim's immediate neighbor (``hops=1``).  Every node processing
        it installs a maximum-freshness reverse route to ``victim`` through
        the attacker — a route no legitimate update can ever displace.

        The *requested* sequence number is also the maximum, so no
        intermediate node can answer from its table and suppress the
        rebroadcast: the forged request floods the whole network, exactly
        the flooding overhead (and network-wide poisoning) the paper
        describes.
        """
        self._forged_rreq_id += 1
        return Packet(
            ptype=PacketType.RREQ,
            origin=victim,
            dest=BROADCAST,
            size=48,
            ttl=self.net_ttl,
            hops=1,
            info={
                "rreq_id": self._forged_rreq_id,
                "origin_seq": AODV_MAX_SEQ,
                "target": victim,
                "target_seq": AODV_MAX_SEQ,
                # RFC 3561 'D' flag: only the destination may answer.  For
                # the attacker this guarantees the forged request floods
                # the whole network instead of being answered (and
                # suppressed) one hop away by freshly poisoned tables.
                "destination_only": True,
            },
        )
