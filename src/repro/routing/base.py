"""Shared routing-protocol machinery.

:class:`RoutingProtocol` defines the contract the :class:`~repro.simulation.
node.Node` expects, plus the trace-logging helpers both AODV and DSR use so
that route-fabric events land in the stats streams consumed by Feature Set I.

:class:`PacketBuffer` is the send buffer both protocols use to hold data
packets while a route discovery for their destination is in flight.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict

from repro.simulation.node import Node
from repro.simulation.packet import Direction, Packet, PacketType
from repro.simulation.stats import RouteEventKind


class PacketBuffer:
    """Bounded per-destination buffer for packets awaiting a route.

    Overflow evicts the oldest packet for that destination (returned to the
    caller so it can be logged as dropped).
    """

    def __init__(self, max_per_dest: int = 64):
        self.max_per_dest = max_per_dest
        self._buffers: OrderedDict[int, list[Packet]] = OrderedDict()

    def add(self, dest: int, packet: Packet) -> Packet | None:
        """Buffer a packet; return the evicted packet on overflow, else None."""
        queue = self._buffers.setdefault(dest, [])
        queue.append(packet)
        if len(queue) > self.max_per_dest:
            return queue.pop(0)
        return None

    def pop_all(self, dest: int) -> list[Packet]:
        """Remove and return all packets buffered for ``dest``."""
        return self._buffers.pop(dest, [])

    def pending(self, dest: int) -> int:
        """Number of packets currently buffered for ``dest``."""
        return len(self._buffers.get(dest, []))

    def destinations(self) -> list[int]:
        """Destinations that currently have buffered packets."""
        return list(self._buffers.keys())

    def __len__(self) -> int:
        return sum(len(q) for q in self._buffers.values())


class RoutingProtocol(ABC):
    """Base class for MANET routing protocols.

    Subclasses implement :meth:`send_data` (originate or locally deliver a
    data packet) and :meth:`handle_packet` (process a packet arriving from
    the medium).  :meth:`handle_overhear` is optional and only meaningful
    for protocols that learn from promiscuous traffic (DSR).
    """

    name: str = "base"

    def __init__(self, node: Node):
        self.node = node
        self.sim = node.sim
        self.stats = node.stats
        # Plain attributes / pre-bound methods: these sit on every
        # per-packet path, so skip the property and double lookups.
        self.node_id = node.node_id
        self._stats_log_packet = node.stats.log_packet
        self._stats_log_route_event = node.stats.log_route_event
        node.set_routing(self)

    # ------------------------------------------------------------------
    # Contract
    # ------------------------------------------------------------------
    @abstractmethod
    def send_data(self, packet: Packet) -> None:
        """Originate a data packet from this node (or deliver to self)."""

    @abstractmethod
    def handle_packet(self, packet: Packet, from_id: int) -> None:
        """Process a packet received from neighbor ``from_id``."""

    def handle_overhear(self, packet: Packet, from_id: int) -> None:
        """Process a promiscuously overheard packet (default: ignore)."""

    # ------------------------------------------------------------------
    # Trace-logging helpers
    # ------------------------------------------------------------------
    def log_packet(self, ptype: PacketType, direction: Direction) -> None:
        """Record a packet event in this node's trace."""
        self._stats_log_packet(self.sim.now, ptype, direction)

    def log_route_event(self, kind: RouteEventKind) -> None:
        """Record a route-fabric event in this node's trace."""
        self._stats_log_route_event(self.sim.now, kind)

    def log_route_length(self, hops: int) -> None:
        """Record the hop count of a route being used for data."""
        self.stats.log_route_length(self.sim.now, hops)

    def log_drop(self, packet: Packet) -> None:
        """Log a packet discarded at this node."""
        self._stats_log_packet(self.sim.now, packet.ptype, Direction.DROPPED)
