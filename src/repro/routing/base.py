"""Shared routing-protocol machinery.

:class:`RoutingProtocol` defines the contract the :class:`~repro.simulation.
node.Node` expects, plus the trace-logging helpers both AODV and DSR use so
that route-fabric events land in the stats streams consumed by Feature Set I.

:class:`PacketBuffer` is the send buffer both protocols use to hold data
packets while a route discovery for their destination is in flight.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections import OrderedDict

from repro.simulation.node import Node
from repro.simulation.packet import Direction, Packet, PacketType
from repro.simulation.stats import RouteEventKind


def _default_routing_fast() -> bool:
    """Routing fast-path default: on, unless ``REPRO_ROUTING_FAST=0``."""
    return os.environ.get("REPRO_ROUTING_FAST", "1") not in ("0", "false", "no")


class PacketBuffer:
    """Bounded per-destination buffer for packets awaiting a route.

    Overflow evicts the oldest packet for that destination (returned to the
    caller so it can be logged as dropped).
    """

    def __init__(self, max_per_dest: int = 64):
        self.max_per_dest = max_per_dest
        self._buffers: OrderedDict[int, list[Packet]] = OrderedDict()

    def add(self, dest: int, packet: Packet) -> Packet | None:
        """Buffer a packet; return the evicted packet on overflow, else None."""
        queue = self._buffers.setdefault(dest, [])
        queue.append(packet)
        if len(queue) > self.max_per_dest:
            return queue.pop(0)
        return None

    def pop_all(self, dest: int) -> list[Packet]:
        """Remove and return all packets buffered for ``dest``."""
        return self._buffers.pop(dest, [])

    def pending(self, dest: int) -> int:
        """Number of packets currently buffered for ``dest``."""
        return len(self._buffers.get(dest, []))

    def destinations(self) -> list[int]:
        """Destinations that currently have buffered packets."""
        return list(self._buffers.keys())

    def __len__(self) -> int:
        return sum(len(q) for q in self._buffers.values())


class RoutingProtocol(ABC):
    """Base class for MANET routing protocols.

    Subclasses implement :meth:`send_data` (originate or locally deliver a
    data packet) and :meth:`handle_packet` (process a packet arriving from
    the medium).  :meth:`handle_overhear` is optional and only meaningful
    for protocols that learn from promiscuous traffic (DSR).

    ``routing_fast`` selects the flattened hot-handler fast path (see
    DESIGN.md §Routing fast path).  ``None`` (default) reads
    ``$REPRO_ROUTING_FAST``; an explicit ``True``/``False`` forces the
    choice.  Either way the protocol produces bit-identical traces — the
    fast path only changes *how* hot handlers execute, never their
    decisions.  Protocols that install one publish ``typed_handlers``
    (packet type -> flattened handler) for the medium's per-type fan-out
    dispatch rows.
    """

    name: str = "base"

    #: Packet-type -> flattened handler map for the medium's typed fan-out
    #: dispatch (populated by protocols that install a fast path).
    typed_handlers: dict | None = None

    def __init__(self, node: Node, routing_fast: bool | None = None):
        self.node = node
        self.sim = node.sim
        self.stats = node.stats
        self.routing_fast: bool = (
            _default_routing_fast() if routing_fast is None else bool(routing_fast)
        )
        # Plain attributes / pre-bound methods: these sit on every
        # per-packet path, so skip the property and double lookups.
        self.node_id = node.node_id
        self._stats_log_packet = node.stats.log_packet
        self._stats_log_route_event = node.stats.log_route_event
        node.set_routing(self)

    # ------------------------------------------------------------------
    # Contract
    # ------------------------------------------------------------------
    @abstractmethod
    def send_data(self, packet: Packet) -> None:
        """Originate a data packet from this node (or deliver to self)."""

    @abstractmethod
    def handle_packet(self, packet: Packet, from_id: int) -> None:
        """Process a packet received from neighbor ``from_id``."""

    def handle_overhear(self, packet: Packet, from_id: int) -> None:
        """Process a promiscuously overheard packet (default: ignore)."""

    # ------------------------------------------------------------------
    # Duplicate-flood filter (mode-neutral interface over two stores)
    # ------------------------------------------------------------------
    # AODV and DSR both discard repeat copies of a flood via a seen set
    # keyed by (origin, flood id).  The reference store is one dict keyed
    # by the tuple; the fast-path store is a dict of per-origin dicts
    # keyed by the (small-int) flood id, so the hot membership test never
    # allocates or hashes a tuple.  Same membership answers, same purge
    # decisions — ``_seen_count`` tracks the total so the >512 purge
    # trigger matches the reference dict's ``len()``.  Protocols using
    # this interface initialise ``_seen_rreqs``, ``_seen_by_origin`` and
    # ``_seen_count`` in ``__init__``.

    _seen_rreqs: dict  # (origin, flood id) -> first-seen time (reference)
    _seen_by_origin: dict  # origin -> {flood id: first-seen time} (fast)
    _seen_count: int

    def _seen_mark(self, origin: int, rreq_id: int, now: float) -> None:
        """Record one (origin, rreq_id) as seen in the active structure."""
        if self.routing_fast:
            d = self._seen_by_origin.get(origin)
            if d is None:
                self._seen_by_origin[origin] = {rreq_id: now}
                self._seen_count += 1
            elif rreq_id not in d:
                d[rreq_id] = now
                self._seen_count += 1
            else:
                d[rreq_id] = now
        else:
            self._seen_rreqs[(origin, rreq_id)] = now

    def _seen_has(self, origin: int, rreq_id: int) -> bool:
        """Membership test against the active structure."""
        if self.routing_fast:
            d = self._seen_by_origin.get(origin)
            return d is not None and rreq_id in d
        return (origin, rreq_id) in self._seen_rreqs

    def _seen_size(self) -> int:
        """Number of remembered (origin, rreq_id) pairs."""
        if self.routing_fast:
            return self._seen_count
        return len(self._seen_rreqs)

    def _seen_prune(self, now: float) -> None:
        """The reference >512-entry purge, on whichever store is active.

        Identical forgetting decisions either way: trigger when the total
        exceeds 512, drop exactly the entries older than 30 s.
        """
        if self.routing_fast:
            if self._seen_count > 512:
                horizon = now - 30.0
                seen = self._seen_by_origin
                total = 0
                for origin, d in list(seen.items()):
                    kept = {k: t for k, t in d.items() if t >= horizon}
                    if kept:
                        seen[origin] = kept
                        total += len(kept)
                    else:
                        del seen[origin]
                self._seen_count = total
        elif len(self._seen_rreqs) > 512:
            horizon = now - 30.0
            self._seen_rreqs = {
                k: t for k, t in self._seen_rreqs.items() if t >= horizon
            }

    # ------------------------------------------------------------------
    # Trace-logging helpers
    # ------------------------------------------------------------------
    def log_packet(self, ptype: PacketType, direction: Direction) -> None:
        """Record a packet event in this node's trace."""
        self._stats_log_packet(self.sim.now, ptype, direction)

    def log_route_event(self, kind: RouteEventKind) -> None:
        """Record a route-fabric event in this node's trace."""
        self._stats_log_route_event(self.sim.now, kind)

    def log_route_length(self, hops: int) -> None:
        """Record the hop count of a route being used for data."""
        self.stats.log_route_length(self.sim.now, hops)

    def log_drop(self, packet: Packet) -> None:
        """Log a packet discarded at this node."""
        self._stats_log_packet(self.sim.now, packet.ptype, Direction.DROPPED)
