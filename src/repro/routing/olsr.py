"""Optimized Link State Routing (OLSR) — proactive-protocol extension.

The paper's §2 names OLSR (Clausen et al. 2001) as the other family of
MANET routing protocols ("There are other MANET routing protocols such as
ZRP, OLSR, etc.") but evaluates only the on-demand ones implemented in
ns-2.  This module implements a compact OLSR (RFC 3626 core) so the
cross-feature framework can be exercised on *proactive* routing traffic,
whose statistics look completely different from AODV/DSR: periodic HELLO
and TC floods instead of on-demand request/reply bursts.

Implemented machinery:

* **neighbor sensing** — periodic HELLOs carrying the sender's neighbor
  list give every node its symmetric 1-hop and 2-hop neighborhoods;
* **multipoint relays (MPR)** — each node greedily selects a minimal
  subset of neighbors covering its whole 2-hop neighborhood; HELLOs
  announce the selection, so nodes know their *MPR selectors*;
* **topology control (TC)** — nodes with MPR selectors periodically
  originate TC messages advertising them, flooded through the MPR
  backbone only (the OLSR optimization), with duplicate suppression;
* **route calculation** — shortest paths (BFS) over the link state
  assembled from neighbors, 2-hop sets and TC topology tuples; the
  routing table is recomputed on timer and table diffs are logged as the
  paper's route add / removal events.

Unlike AODV, OLSR has no destination sequence numbers: forged topology
(see :meth:`OlsrProtocol.forge_tc_advert`) only holds while the attacker
keeps advertising, after which the entries expire — the network
*self-heals*, a qualitative contrast to the paper's AODV observation
worth seeing in the benchmarks.
"""

from __future__ import annotations

from collections import deque

from repro.routing.base import RoutingProtocol
from repro.simulation.node import Node
from repro.simulation.packet import BROADCAST, Direction, Packet, PacketType
from repro.simulation.stats import RouteEventKind


class OlsrProtocol(RoutingProtocol):
    """OLSR routing agent for one node."""

    name = "olsr"

    def __init__(
        self,
        node: Node,
        hello_interval: float = 2.0,
        tc_interval: float = 5.0,
        neighbor_hold: float = 6.0,
        topology_hold: float = 16.0,
        route_interval: float = 1.0,
        routing_fast: bool | None = None,
    ):
        super().__init__(node, routing_fast)
        self.hello_interval = hello_interval
        self.tc_interval = tc_interval
        self.neighbor_hold = neighbor_hold
        self.topology_hold = topology_hold
        self.route_interval = route_interval

        #: symmetric 1-hop neighbors -> hold-time expiry
        self.neighbors: dict[int, float] = {}
        #: neighbor -> (its reported neighbor set, expiry)
        self.two_hop: dict[int, tuple[frozenset[int], float]] = {}
        #: our chosen multipoint relays
        self.mpr_set: frozenset[int] = frozenset()
        #: nodes that chose us as their MPR -> expiry
        self.mpr_selectors: dict[int, float] = {}
        #: (advertising node, advertised destination) -> expiry
        self.topology: dict[tuple[int, int], float] = {}
        #: computed routing table: dest -> (next_hop, hops)
        self.routes: dict[int, tuple[int, int]] = {}
        self.tc_seq = 0
        self._forged_tc_seq = 1 << 20
        self._seen_tc: dict[tuple[int, int], float] = {}
        # Packet-type dispatch table (hot path).  OLSR has no
        # RREQ/RREP/RERR; foreign packet types are ignored.
        self._dispatch = {
            PacketType.DATA: self._handle_data,
            PacketType.HELLO: self._handle_hello,
            PacketType.TC: self._handle_tc,
        }
        if self.routing_fast:
            # OLSR's handle_packet is pure dispatch (no per-packet side
            # effects before the handler), so the typed fan-out rows can
            # bind the reference handlers directly — the win is skipping
            # the handle_packet frame + dict lookup per delivery.
            self.typed_handlers = dict(self._dispatch)
            node.refresh_dispatch()

        rng = self.sim.rng
        self.sim.schedule(rng.uniform(0, hello_interval), self._hello_tick)
        self.sim.schedule(rng.uniform(0, tc_interval), self._tc_tick)
        self.sim.schedule(rng.uniform(0, route_interval), self._route_tick)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send_data(self, packet: Packet) -> None:
        if packet.dest == self.node_id:
            self.node.deliver(packet)
            return
        route = self.routes.get(packet.dest)
        if route is None:
            self.log_drop(packet)  # proactive: no route means unreachable now
            return
        self.log_route_event(RouteEventKind.FIND)
        self.log_route_length(route[1])
        if not self.node.unicast(packet, route[0], self._on_link_fail):
            self.log_drop(packet)

    def _handle_data(self, packet: Packet, from_id: int) -> None:
        if self.node.should_drop(packet):
            return  # malicious silent drop
        if packet.dest == self.node_id:
            self.node.deliver(packet)
            return
        packet.ttl -= 1
        packet.hops += 1
        if packet.ttl <= 0:
            self.log_drop(packet)
            return
        route = self.routes.get(packet.dest)
        if route is None:
            self.log_drop(packet)
            return
        self.log_packet(PacketType.DATA, Direction.FORWARDED)
        if not self.node.unicast(packet, route[0], self._on_link_fail):
            self.log_drop(packet)

    def _on_link_fail(self, packet: Packet, next_hop: int) -> None:
        """MAC feedback beat the hold timers: drop the neighbor now."""
        if next_hop in self.neighbors:
            del self.neighbors[next_hop]
            self.two_hop.pop(next_hop, None)
            self.log_route_event(RouteEventKind.REPAIR)
            self._recompute_routes()
        route = self.routes.get(packet.dest)
        if route is not None and route[0] != next_hop and packet.ttl > 0:
            self.node.unicast(packet, route[0], self._on_link_fail)
        else:
            self.log_drop(packet)

    # ------------------------------------------------------------------
    # Neighbor sensing + MPR selection
    # ------------------------------------------------------------------
    def _hello_tick(self) -> None:
        self._expire_state()
        self._select_mprs()
        packet = Packet(
            ptype=PacketType.HELLO,
            origin=self.node_id,
            dest=BROADCAST,
            size=32 + 4 * len(self.neighbors),
            ttl=1,
            info={
                "neighbors": sorted(self.neighbors),
                "mprs": sorted(self.mpr_set),
            },
        )
        self.log_packet(PacketType.HELLO, Direction.SENT)
        self.node.broadcast(packet)
        self.sim.schedule(self.hello_interval, self._hello_tick)

    def _handle_hello(self, packet: Packet, from_id: int) -> None:
        self.log_packet(PacketType.HELLO, Direction.RECEIVED)
        now = self.sim.now
        self.neighbors[from_id] = now + self.neighbor_hold
        self.two_hop[from_id] = (
            frozenset(packet.info["neighbors"]) - {self.node_id},
            now + self.neighbor_hold,
        )
        if self.node_id in packet.info["mprs"]:
            self.mpr_selectors[from_id] = now + self.neighbor_hold
        else:
            self.mpr_selectors.pop(from_id, None)

    def _select_mprs(self) -> None:
        """Greedy minimal cover of the 2-hop neighborhood (RFC 3626 §8.3)."""
        uncovered: set[int] = set()
        coverage: dict[int, set[int]] = {}
        for neighbor, (their_neighbors, _) in self.two_hop.items():
            if neighbor not in self.neighbors:
                continue
            reach = their_neighbors - set(self.neighbors) - {self.node_id}
            coverage[neighbor] = set(reach)
            uncovered |= reach
        chosen: set[int] = set()
        while uncovered:
            best = max(coverage, key=lambda n: len(coverage[n] & uncovered))
            gain = coverage[best] & uncovered
            if not gain:
                break
            chosen.add(best)
            uncovered -= gain
        self.mpr_set = frozenset(chosen)

    # ------------------------------------------------------------------
    # Topology control flooding
    # ------------------------------------------------------------------
    def _tc_tick(self) -> None:
        if self.mpr_selectors:
            self.tc_seq += 1
            packet = Packet(
                ptype=PacketType.TC,
                origin=self.node_id,
                dest=BROADCAST,
                size=32 + 4 * len(self.mpr_selectors),
                ttl=16,
                info={
                    "tc_seq": self.tc_seq,
                    "advertised": sorted(self.mpr_selectors),
                },
            )
            self._seen_tc[(self.node_id, self.tc_seq)] = self.sim.now
            self.log_packet(PacketType.TC, Direction.SENT)
            self.node.broadcast(packet)
        self.sim.schedule(self.tc_interval, self._tc_tick)

    def _handle_tc(self, packet: Packet, from_id: int) -> None:
        self.log_packet(PacketType.TC, Direction.RECEIVED)
        info = packet.info
        key = (packet.origin, info["tc_seq"])
        if key in self._seen_tc:
            return
        self._seen_tc[key] = self.sim.now
        expiry = self.sim.now + self.topology_hold
        for dest in info["advertised"]:
            if dest != self.node_id:
                self.topology[(packet.origin, dest)] = expiry
        # MPR forwarding: only relays selected by the *sender* re-flood.
        if from_id in self.mpr_selectors and packet.ttl > 1:
            relay = packet.copy()
            relay.ttl -= 1
            relay.hops += 1
            self.log_packet(PacketType.TC, Direction.FORWARDED)
            self.node.broadcast(relay)

    # ------------------------------------------------------------------
    # Route calculation
    # ------------------------------------------------------------------
    def _route_tick(self) -> None:
        self._expire_state()
        self._recompute_routes()
        if len(self._seen_tc) > 512:
            horizon = self.sim.now - 60.0
            self._seen_tc = {k: t for k, t in self._seen_tc.items() if t >= horizon}
        self.sim.schedule(self.route_interval, self._route_tick)

    def _expire_state(self) -> None:
        now = self.sim.now
        self.neighbors = {n: e for n, e in self.neighbors.items() if e > now}
        self.two_hop = {
            n: v for n, v in self.two_hop.items()
            if v[1] > now and n in self.neighbors
        }
        self.mpr_selectors = {n: e for n, e in self.mpr_selectors.items() if e > now}
        self.topology = {k: e for k, e in self.topology.items() if e > now}

    def _recompute_routes(self) -> None:
        """BFS over the assembled link state; diff-log table changes."""
        graph: dict[int, set[int]] = {self.node_id: set(self.neighbors)}
        for neighbor, (their_neighbors, _) in self.two_hop.items():
            graph.setdefault(neighbor, set()).update(their_neighbors)
        for (advertiser, dest) in self.topology:
            graph.setdefault(advertiser, set()).add(dest)
            graph.setdefault(dest, set()).add(advertiser)

        new_routes: dict[int, tuple[int, int]] = {}
        queue = deque()
        for neighbor in self.neighbors:
            new_routes[neighbor] = (neighbor, 1)
            queue.append(neighbor)
        while queue:
            current = queue.popleft()
            next_hop, hops = new_routes[current]
            for peer in graph.get(current, ()):
                if peer == self.node_id or peer in new_routes:
                    continue
                new_routes[peer] = (next_hop, hops + 1)
                queue.append(peer)

        for dest in new_routes:
            if dest not in self.routes:
                self.log_route_event(RouteEventKind.ADD)
        for dest in self.routes:
            if dest not in new_routes:
                self.log_route_event(RouteEventKind.REMOVAL)
        self.routes = new_routes

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet, from_id: int) -> None:
        handler = self._dispatch.get(packet.ptype)
        if handler is not None:
            handler(packet, from_id)

    # ------------------------------------------------------------------
    # Attack surface (called only by repro.attacks)
    # ------------------------------------------------------------------
    def forge_tc_advert(self, victims: list[int]) -> Packet:
        """A forged TC claiming every victim is our MPR selector.

        Receivers install topology tuples ``(attacker, victim)`` for all
        victims, so shortest-path calculation bends routes toward the
        attacker.  There is no sequence-number freshness to poison —
        unlike the paper's AODV black hole, the damage *expires* with the
        topology hold time once the attacker stops advertising.
        """
        self._forged_tc_seq += 1
        return Packet(
            ptype=PacketType.TC,
            origin=self.node_id,
            dest=BROADCAST,
            size=32 + 4 * len(victims),
            ttl=16,
            info={"tc_seq": self._forged_tc_seq, "advertised": sorted(victims)},
        )

    def forge_route_advert(self, victim: int) -> Packet:
        """Single-victim forged advert (the generic black-hole hook)."""
        return self.forge_tc_advert([victim])
