"""Feature construction (paper §4.1, Tables 4 and 5).

* **Feature Set I** (:mod:`repro.features.topology`) — topology and route
  fabric features sampled every 5 s: absolute velocity, the five route
  event counts, total route change and average route length.
* **Feature Set II** (:mod:`repro.features.traffic`) — the traffic feature
  grid ``<packet type, flow direction, sampling period, statistics
  measure>``: (6 types x 4 directions - 2 excluded) x 3 periods x
  2 measures = 132 features.
* :mod:`repro.features.extraction` assembles both sets into a
  :class:`~repro.features.extraction.FeatureDataset` from a simulation
  trace, including the ground-truth intrusion labels per sampling window.
"""

from repro.features.extraction import FeatureDataset, extract_features
from repro.features.io import load_dataset, save_dataset
from repro.features.topology import TOPOLOGY_FEATURE_NAMES, topology_features
from repro.features.traffic import (
    DEFAULT_SAMPLING_PERIODS,
    TrafficFeatureSpec,
    traffic_feature_grid,
    traffic_features,
)

__all__ = [
    "DEFAULT_SAMPLING_PERIODS",
    "FeatureDataset",
    "TOPOLOGY_FEATURE_NAMES",
    "TrafficFeatureSpec",
    "extract_features",
    "load_dataset",
    "save_dataset",
    "topology_features",
    "traffic_feature_grid",
    "traffic_features",
]
