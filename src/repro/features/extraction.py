"""Assemble Feature Sets I + II into a labelled dataset from a trace.

One row per 5 s sampling window at the chosen monitor node; the paper
collects all reported results "on one node only" and verifies the others
behave similarly, so the monitor id is a parameter here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.topology import topology_features
from repro.features.traffic import DEFAULT_SAMPLING_PERIODS, traffic_features
from repro.simulation.scenario import SimulationTrace


@dataclass
class FeatureDataset:
    """A labelled feature matrix extracted from one simulation trace.

    Attributes
    ----------
    X:
        ``(n_windows, n_features)`` raw (continuous) feature values.
    feature_names:
        Column names; Feature Set I first, then the Table 5 grid.
    times:
        Window end times — the paper's ``time`` column, "ignored in
        classification, only used for reference".
    labels:
        Ground truth: True where the window overlaps an intrusion session.
    monitor:
        The node whose trace produced the rows.
    """

    X: np.ndarray
    feature_names: list[str]
    times: np.ndarray
    labels: np.ndarray
    monitor: int

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    def __len__(self) -> int:
        return self.X.shape[0]

    def normal_only(self) -> "FeatureDataset":
        """Rows with a normal ground-truth label (for training)."""
        mask = ~self.labels
        return FeatureDataset(
            X=self.X[mask],
            feature_names=self.feature_names,
            times=self.times[mask],
            labels=self.labels[mask],
            monitor=self.monitor,
        )

    @staticmethod
    def concat(datasets: list["FeatureDataset"]) -> "FeatureDataset":
        """Stack several datasets (e.g. multiple training traces).

        All inputs must share one monitor node — the result carries a
        single ``monitor``, and silently stamping the first dataset's id
        on rows observed elsewhere would misattribute them.
        """
        if not datasets:
            raise ValueError("need at least one dataset")
        first = datasets[0]
        for ds in datasets[1:]:
            if ds.feature_names != first.feature_names:
                raise ValueError("datasets have different feature sets")
            if ds.monitor != first.monitor:
                raise ValueError(
                    f"datasets observe different monitors "
                    f"({first.monitor} vs {ds.monitor}); concat would "
                    f"mislabel their rows"
                )
        return FeatureDataset(
            X=np.vstack([ds.X for ds in datasets]),
            feature_names=first.feature_names,
            times=np.concatenate([ds.times for ds in datasets]),
            labels=np.concatenate([ds.labels for ds in datasets]),
            monitor=first.monitor,
        )

    def slice_time(self, start: float, end: float) -> "FeatureDataset":
        """Rows whose window end time falls inside ``[start, end)``."""
        mask = (self.times >= start) & (self.times < end)
        return FeatureDataset(
            X=self.X[mask],
            feature_names=self.feature_names,
            times=self.times[mask],
            labels=self.labels[mask],
            monitor=self.monitor,
        )


def extract_features(
    trace: SimulationTrace,
    monitor: int = 0,
    periods: tuple[float, ...] = DEFAULT_SAMPLING_PERIODS,
    warmup: float = 0.0,
    label_policy: str = "session",
) -> FeatureDataset:
    """Build the full feature dataset for one monitor node.

    Parameters
    ----------
    trace:
        A completed simulation run.
    monitor:
        Node whose local trace is analysed (must not be the attacker for a
        faithful reproduction — the compromised node would be observing
        itself).
    periods:
        Sampling periods for Feature Set II (paper: 5 s, 1 min, 15 min).
    warmup:
        Drop windows ending before this time (traffic ramp-up).
    label_policy:
        Ground-truth labelling: ``"session"`` or ``"post_attack"`` (see
        :meth:`SimulationTrace.window_labels`).
    """
    if not 0 <= monitor < trace.n_nodes:
        raise ValueError(f"monitor {monitor} out of range")
    ticks = np.asarray(trace.tick_times, dtype=float)
    speeds = np.asarray([s[monitor] for s in trace.speeds], dtype=float)
    stats = trace.recorder[monitor]

    topo_X, topo_names = topology_features(
        stats, ticks, speeds, period=trace.config.sampling_period
    )
    traf_X, traf_specs = traffic_features(stats, ticks, periods)
    X = np.concatenate([topo_X, traf_X], axis=1)
    names = topo_names + [spec.name for spec in traf_specs]

    labels = np.asarray(trace.window_labels(label_policy), dtype=bool)
    if warmup > 0:
        keep = ticks >= warmup
        X, ticks, labels = X[keep], ticks[keep], labels[keep]
    return FeatureDataset(
        X=X, feature_names=names, times=ticks, labels=labels, monitor=monitor
    )
