"""Dataset persistence: save/load extracted feature datasets as ``.npz``.

Simulation is the expensive step of the pipeline; persisting the
extracted :class:`~repro.features.extraction.FeatureDataset` lets
training/evaluation runs be repeated (or shared) without re-simulating.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.features.extraction import FeatureDataset


def save_dataset(dataset: FeatureDataset, path: str | Path) -> Path:
    """Write a feature dataset to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(
        path,
        X=dataset.X,
        times=dataset.times,
        labels=dataset.labels,
        feature_names=np.asarray(dataset.feature_names, dtype=object),
        monitor=np.asarray([dataset.monitor]),
    )
    return path


def load_dataset(path: str | Path) -> FeatureDataset:
    """Read a feature dataset written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path, allow_pickle=True) as data:
        required = {"X", "times", "labels", "feature_names", "monitor"}
        missing = required - set(data.files)
        if missing:
            raise ValueError(f"{path} is not a feature dataset (missing {sorted(missing)})")
        return FeatureDataset(
            X=data["X"],
            times=data["times"],
            labels=data["labels"].astype(bool),
            feature_names=[str(n) for n in data["feature_names"]],
            monitor=int(data["monitor"][0]),
        )
