"""Feature Set II: traffic-related features (paper Table 5).

A traffic feature is the vector ``<packet type, flow direction, sampling
period, statistics measure>``:

* packet types — data, route (all), ROUTE REQUEST, ROUTE REPLY,
  ROUTE ERROR, HELLO (6 values);
* flow directions — received, sent, forwarded, dropped (4 values);
* sampling periods — 5 s, 60 s and 900 s (short- and long-term patterns);
* measures — packet count, and standard deviation of inter-packet
  intervals.

The combinations (data, forwarded) and (data, dropped) are excluded: MANET
routing protocols encapsulate data packets in transit, so — as the paper
puts it — "all activities (including forwarding and dropping) during the
transmission process only involve route packets".  Accordingly the
extractor *folds* in-transit data events into the "route (all)" aggregate.
Total: (6 x 4 - 2) x 3 x 2 = **132 features**.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.packet import Direction, PacketType
from repro.simulation.stats import NodeStats

PACKET_TYPE_NAMES = ["data", "route_all", "rreq", "rrep", "rerr", "hello"]
DIRECTION_NAMES = ["received", "sent", "forwarded", "dropped"]
MEASURE_NAMES = ["count", "iat_std"]
DEFAULT_SAMPLING_PERIODS = (5.0, 60.0, 900.0)

#: (packet type, direction) pairs excluded per the encapsulation argument.
EXCLUDED_COMBOS = {("data", "forwarded"), ("data", "dropped")}

_CONTROL_TYPES = (
    PacketType.RREQ,
    PacketType.RREP,
    PacketType.RERR,
    PacketType.HELLO,
    PacketType.TC,  # OLSR extension traffic counts as "route (all)"
)
_TYPE_NAME_TO_ENUM = {
    "data": PacketType.DATA,
    "rreq": PacketType.RREQ,
    "rrep": PacketType.RREP,
    "rerr": PacketType.RERR,
    "hello": PacketType.HELLO,
}


@dataclass(frozen=True)
class TrafficFeatureSpec:
    """One cell of the Table 5 grid.

    ``encode()`` returns the paper's numeric encoding, e.g. the standard
    deviation of inter-packet intervals of received ROUTE REQUEST packets
    every 5 seconds is ``<2, 0, 0, 1>``.
    """

    packet_type: str
    direction: str
    period: float
    measure: str

    @property
    def name(self) -> str:
        period = int(self.period) if self.period == int(self.period) else self.period
        return f"{self.packet_type}_{self.direction}_{period}s_{self.measure}"

    def encode(self, periods: tuple[float, ...] = DEFAULT_SAMPLING_PERIODS) -> tuple[int, int, int, int]:
        """The paper's numeric 4-tuple encoding of this feature."""
        return (
            PACKET_TYPE_NAMES.index(self.packet_type),
            DIRECTION_NAMES.index(self.direction),
            periods.index(self.period),
            MEASURE_NAMES.index(self.measure),
        )


def traffic_feature_grid(
    periods: tuple[float, ...] = DEFAULT_SAMPLING_PERIODS,
) -> list[TrafficFeatureSpec]:
    """Enumerate the full Table 5 grid (132 specs for the default periods)."""
    specs = []
    for ptype in PACKET_TYPE_NAMES:
        for direction in DIRECTION_NAMES:
            if (ptype, direction) in EXCLUDED_COMBOS:
                continue
            for period in periods:
                for measure in MEASURE_NAMES:
                    specs.append(TrafficFeatureSpec(ptype, direction, period, measure))
    return specs


def _event_times(stats: NodeStats, type_name: str, direction: str) -> np.ndarray:
    """Merged, sorted event-time stream for one (type, direction) combo.

    ``route_all`` aggregates every control type, and — for the forwarded
    and dropped directions — the in-transit data events as well (the
    encapsulation fold described in the module docstring).
    """
    dr = Direction[direction.upper()]
    if type_name != "route_all":
        pt = _TYPE_NAME_TO_ENUM[type_name]
        return np.asarray(stats.packet_times[(int(pt), int(dr))], dtype=float)
    streams = [
        np.asarray(stats.packet_times[(int(pt), int(dr))], dtype=float)
        for pt in _CONTROL_TYPES
    ]
    if direction in ("forwarded", "dropped"):
        streams.append(
            np.asarray(stats.packet_times[(int(PacketType.DATA), int(dr))], dtype=float)
        )
    merged = np.concatenate(streams) if streams else np.empty(0)
    merged.sort(kind="mergesort")
    return merged


def _window_counts(times: np.ndarray, ticks: np.ndarray, period: float) -> np.ndarray:
    """Event count inside each half-open window ``(tick - period, tick]``."""
    lo = np.searchsorted(times, ticks - period, side="right")
    hi = np.searchsorted(times, ticks, side="right")
    return (hi - lo).astype(float)


def _window_iat_std(times: np.ndarray, ticks: np.ndarray, period: float) -> np.ndarray:
    """Std of inter-packet intervals inside each window.

    Uses prefix sums over the interval sequence so the whole tick series is
    computed in O(n log n) regardless of window width.  Windows with fewer
    than three events (fewer than two intervals) yield 0.
    """
    n = len(times)
    out = np.zeros(len(ticks))
    if n < 3:
        return out
    diffs = np.diff(times)
    s1 = np.concatenate(([0.0], np.cumsum(diffs)))
    s2 = np.concatenate(([0.0], np.cumsum(diffs * diffs)))
    lo = np.searchsorted(times, ticks - period, side="right")
    hi = np.searchsorted(times, ticks, side="right")
    # Intervals fully inside window [lo, hi): diffs[lo .. hi-2].
    n_int = hi - 1 - lo
    mask = n_int >= 2
    if not mask.any():
        return out
    lo_m, hi_m, k = lo[mask], hi[mask], n_int[mask].astype(float)
    total = s1[hi_m - 1] - s1[lo_m]
    total_sq = s2[hi_m - 1] - s2[lo_m]
    mean = total / k
    var = np.maximum(total_sq / k - mean * mean, 0.0)
    out[mask] = np.sqrt(var)
    return out


def traffic_features(
    stats: NodeStats,
    tick_times: np.ndarray,
    periods: tuple[float, ...] = DEFAULT_SAMPLING_PERIODS,
) -> tuple[np.ndarray, list[TrafficFeatureSpec]]:
    """Compute the Feature Set II matrix for one monitor node.

    Returns ``(X, specs)`` where ``X[k, j]`` is feature ``specs[j]``
    evaluated at the window ending at ``tick_times[k]``.
    """
    ticks = np.asarray(tick_times, dtype=float)
    specs = traffic_feature_grid(periods)
    columns = []
    # Compute the merged stream once per (type, direction) and reuse it for
    # every (period, measure) cell.
    stream_cache: dict[tuple[str, str], np.ndarray] = {}
    for spec in specs:
        key = (spec.packet_type, spec.direction)
        if key not in stream_cache:
            stream_cache[key] = _event_times(stats, *key)
        times = stream_cache[key]
        if spec.measure == "count":
            columns.append(_window_counts(times, ticks, spec.period))
        else:
            columns.append(_window_iat_std(times, ticks, spec.period))
    X = np.column_stack(columns) if columns else np.empty((len(ticks), 0))
    return X, specs
