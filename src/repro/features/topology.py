"""Feature Set I: topology and route related features (paper Table 4).

Sampled per 5 s logging window at the monitor node:

=====================  =====================================================
feature                meaning ("Notes" column of Table 4)
=====================  =====================================================
absolute velocity      the node's scalar speed from the mobility trace
route add count        routes newly added by route discovery
route removal count    stale routes being removed
route find count       routes found in cache, no re-discovery needed
route notice count     routes noticed (eavesdropped) from somewhere else
route repair count     broken routes currently under repair
total route change     route adds + removals in the window
average route length   mean hop count of routes used in the window
=====================  =====================================================

The paper's ``time`` column is carried separately by the dataset ("ignored
in classification, only used for reference").
"""

from __future__ import annotations

import numpy as np

from repro.simulation.stats import NodeStats, RouteEventKind

TOPOLOGY_FEATURE_NAMES = [
    "absolute_velocity",
    "route_add_count",
    "route_removal_count",
    "route_find_count",
    "route_notice_count",
    "route_repair_count",
    "total_route_change",
    "average_route_length",
]

_EVENT_ORDER = [
    RouteEventKind.ADD,
    RouteEventKind.REMOVAL,
    RouteEventKind.FIND,
    RouteEventKind.NOTICE,
    RouteEventKind.REPAIR,
]


def _window_counts(times: np.ndarray, ticks: np.ndarray, period: float) -> np.ndarray:
    lo = np.searchsorted(times, ticks - period, side="right")
    hi = np.searchsorted(times, ticks, side="right")
    return (hi - lo).astype(float)


def topology_features(
    stats: NodeStats,
    tick_times: np.ndarray,
    speeds: np.ndarray,
    period: float = 5.0,
) -> tuple[np.ndarray, list[str]]:
    """Compute the Feature Set I matrix for one monitor node.

    Parameters
    ----------
    stats:
        The monitor node's trace log.
    tick_times:
        Window end times (every ``period`` seconds).
    speeds:
        The monitor node's speed at each tick (from the mobility trace).
    period:
        Logging window length — the paper's 5 s.

    Returns ``(X, names)`` with one column per Table 4 feature (the time
    column excluded).
    """
    ticks = np.asarray(tick_times, dtype=float)
    speeds = np.asarray(speeds, dtype=float)
    if speeds.shape != ticks.shape:
        raise ValueError(f"speeds {speeds.shape} must match ticks {ticks.shape}")

    columns = [speeds]
    event_counts = {}
    for kind in _EVENT_ORDER:
        times = np.asarray(stats.route_times[int(kind)], dtype=float)
        event_counts[kind] = _window_counts(times, ticks, period)
        columns.append(event_counts[kind])
    columns.append(event_counts[RouteEventKind.ADD] + event_counts[RouteEventKind.REMOVAL])

    # Average route length: mean hop count over the routes used inside each
    # window; windows with no route use carry the previous value forward
    # (the route fabric persists between uses), starting at 0.
    samples = stats.route_length_samples
    if samples:
        sample_times = np.asarray([t for t, _ in samples], dtype=float)
        sample_hops = np.asarray([h for _, h in samples], dtype=float)
        prefix = np.concatenate(([0.0], np.cumsum(sample_hops)))
        lo = np.searchsorted(sample_times, ticks - period, side="right")
        hi = np.searchsorted(sample_times, ticks, side="right")
        counts = hi - lo
        avg = np.zeros(len(ticks))
        with np.errstate(invalid="ignore"):
            present = counts > 0
            avg[present] = (prefix[hi[present]] - prefix[lo[present]]) / counts[present]
        # Carry-forward for empty windows.
        last = 0.0
        for k in range(len(avg)):
            if counts[k] > 0:
                last = avg[k]
            else:
                avg[k] = last
    else:
        avg = np.zeros(len(ticks))
    columns.append(avg)

    return np.column_stack(columns), list(TOPOLOGY_FEATURE_NAMES)
