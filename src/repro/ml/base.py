"""Classifier base API for integer-encoded categorical data."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def check_categorical(X: np.ndarray, y: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate and canonicalize categorical inputs.

    ``X`` must be a 2-D array of non-negative integers; ``y`` (if given) a
    1-D array of non-negative integers with matching length.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not np.issubdtype(X.dtype, np.integer):
        if not np.allclose(X, np.round(X)):
            raise ValueError("X must contain integer category codes")
        X = X.astype(np.int64)
    else:
        X = X.astype(np.int64)
    if (X < 0).any():
        raise ValueError("category codes must be non-negative")
    if y is None:
        return X, None
    y = np.asarray(y)
    if y.ndim != 1 or len(y) != len(X):
        raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
    y = y.astype(np.int64)
    if (y < 0).any():
        raise ValueError("class codes must be non-negative")
    return X, y


class CategoricalClassifier(ABC):
    """A classifier over integer-coded categorical attributes.

    The contract mirrors what cross-feature analysis needs from a
    sub-model: fit on normal vectors, then report a full class-probability
    distribution per test vector so Algorithm 3 can read off the
    probability of the *true* class.
    """

    def __init__(self) -> None:
        self.n_classes_: int | None = None
        self.n_values_: np.ndarray | None = None

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "CategoricalClassifier":
        """Train on category-coded attributes ``X`` and labels ``y``."""

    @abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape ``(len(X), n_classes)``."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        return np.argmax(self.predict_proba(X), axis=1)

    # ------------------------------------------------------------------
    def _setup_fit(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Shared fit-time bookkeeping: value cardinalities and class count."""
        X, y = check_categorical(X, y)
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_values_ = X.max(axis=0) + 1 if X.shape[1] else np.zeros(0, dtype=np.int64)
        self.n_classes_ = int(y.max()) + 1
        return X, y

    def _check_fitted(self) -> None:
        if self.n_classes_ is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
