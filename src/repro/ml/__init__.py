"""From-scratch categorical classifiers: C4.5, RIPPER and naive Bayes.

These are the three inductive learners the paper evaluates as sub-model
engines (§3, §4.2).  All operate on integer-encoded categorical data (the
output of the equal-frequency discretizer) and expose calibrated
``predict_proba`` — the probability of the true class is the quantity
Algorithm 3's *average probability* aggregates:

* **C4.5** — gain-ratio decision tree with pessimistic error pruning;
  leaf probability ``p(class | x) = n_i / n`` (Laplace-smoothed).
* **RIPPER** — IREP*-style grow/prune rule induction (FOIL gain growth,
  reduced-error pruning), ordered rule list; probabilities from covered
  training-example class counts.
* **NaiveBayes** — the §3 formulation: ``n(l|x) = p(l) prod_j p(a_j|l)``
  normalised across classes, with Laplace smoothing.
"""

from repro.ml.base import CategoricalClassifier, check_categorical
from repro.ml.decision_tree import C45Classifier
from repro.ml.naive_bayes import NaiveBayesClassifier
from repro.ml.ripper import RipperClassifier, Rule

CLASSIFIERS = {
    "c45": C45Classifier,
    "ripper": RipperClassifier,
    "nbc": NaiveBayesClassifier,
}
"""Name -> class map used by the evaluation harness ('c45', 'ripper', 'nbc')."""

__all__ = [
    "C45Classifier",
    "CLASSIFIERS",
    "CategoricalClassifier",
    "NaiveBayesClassifier",
    "RipperClassifier",
    "Rule",
    "check_categorical",
]
