"""Categorical naive Bayes — the paper's NBC sub-model engine.

Implements exactly the §3 formulation: with prior ``p(l_i)`` and
conditional attribute-value frequencies ``p(a_j | l_i)``, the class score
is ``n(l_i|x) = p(l_i) * prod_j p(a_j | l_i)`` and the probability is the
score normalised across classes.  Laplace smoothing keeps unseen
attribute-value/class combinations from zeroing a score, and the product
is computed in log space for numerical stability.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import CategoricalClassifier


class NaiveBayesClassifier(CategoricalClassifier):
    """Naive Bayes over integer-coded categorical attributes.

    Parameters
    ----------
    alpha:
        Laplace smoothing strength (1.0 = add-one).
    """

    #: The ensemble trainer may hand this classifier precomputed
    #: (attribute value, class) contingency tables (``fit(..., root_tables=...)``)
    #: — for naive Bayes those tables ARE the whole fit.
    accepts_root_tables = True

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.log_prior_: np.ndarray | None = None
        self.log_cond_: list[np.ndarray] | None = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        root_tables: "list[np.ndarray] | None" = None,
    ) -> "NaiveBayesClassifier":
        """Count-and-normalise fit via one fused bincount.

        Instead of one ``bincount`` data pass per attribute, every
        attribute's (value, class) pair is offset into its own block and
        the whole matrix is counted in a single pass; the per-attribute
        smoothing/normalisation then runs on the identical integer
        tables, so the fitted parameters are bit-identical to the
        per-attribute loop.  ``root_tables`` (the ensemble trainer's
        shared contingency tensor, see
        :class:`repro.core.model.CrossFeatureModel`) skips even that one
        pass.
        """
        X, y = self._setup_fit(X, y)
        n, k = len(y), self.n_classes_
        class_counts = np.bincount(y, minlength=k).astype(float)
        self.log_prior_ = np.log((class_counts + self.alpha) / (n + self.alpha * k))
        n_attrs = X.shape[1]
        if root_tables is not None:
            if len(root_tables) != n_attrs:
                raise ValueError(
                    f"root_tables has {len(root_tables)} tables, expected {n_attrs}"
                )
            tables = root_tables
        else:
            sizes = self.n_values_ * k
            offsets = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)
            flat = X * k + y[:, None] + offsets[None, :]
            counts = np.bincount(flat.ravel(), minlength=int(sizes.sum()))
            tables = [
                counts[offsets[a]: offsets[a] + sizes[a]].reshape(int(self.n_values_[a]), k)
                for a in range(n_attrs)
            ]
        self.log_cond_ = []
        for table in tables:
            # p(a_j = value | class): columns normalised over values.
            smoothed = table + self.alpha
            self.log_cond_.append(np.log(smoothed / smoothed.sum(axis=0, keepdims=True)))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.int64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        log_scores = np.tile(self.log_prior_, (len(X), 1))
        for attr, table in enumerate(self.log_cond_):
            v = table.shape[0]
            codes = X[:, attr]
            seen = (codes >= 0) & (codes < v)
            # Unseen attribute values are *neutral* evidence (uniform
            # likelihood): the training data says nothing about them, so
            # they must not pull the posterior toward the class that owns
            # the nearest seen bucket.
            contrib = np.where(
                seen[:, None], table[np.clip(codes, 0, v - 1)], -np.log(v)
            )
            log_scores += contrib
        # Normalise in log space: p = exp(s - logsumexp(s)).
        log_scores -= log_scores.max(axis=1, keepdims=True)
        scores = np.exp(log_scores)
        return scores / scores.sum(axis=1, keepdims=True)
