"""RIPPER-style rule induction (Cohen 1995).

The paper's second sub-model engine: an ordered rule list learned
class-by-class (rarest class first), each rule grown on two thirds of the
data by greedily adding the literal with the best **FOIL gain** and pruned
on the held-out third by **reduced-error pruning** of trailing literals.
Rule acceptance requires better-than-chance precision on the prune split.

This is IREP* without the MDL-based global optimisation passes — the part
of RIPPER that matters for the paper is the rule-list *probability*
output: each rule carries the class counts of the training examples it
covers, and ``predict_proba`` returns their Laplace-smoothed distribution
(the paper computes sub-model probabilities "in a similar way [to C4.5]"
for decision-rule classifiers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import CategoricalClassifier


@dataclass
class Rule:
    """A conjunctive rule: ``IF attr_1 == v_1 AND ... THEN target``."""

    target: int
    literals: list[tuple[int, int]] = field(default_factory=list)
    class_counts: np.ndarray | None = None  #: training coverage per class

    def covers(self, X: np.ndarray) -> np.ndarray:
        """Boolean mask of rows satisfying every literal."""
        mask = np.ones(len(X), dtype=bool)
        for attr, value in self.literals:
            mask &= X[:, attr] == value
        return mask

    def __str__(self) -> str:
        if not self.literals:
            cond = "TRUE"
        else:
            cond = " AND ".join(f"f{a}={v}" for a, v in self.literals)
        return f"IF {cond} THEN class={self.target}"


def _foil_gain(p: float, n: float, P: float, N: float) -> float:
    """FOIL information gain of a literal addition."""
    if p == 0:
        return -math.inf
    return p * (math.log2(p / (p + n)) - math.log2(P / (P + N)))


class RipperClassifier(CategoricalClassifier):
    """Ordered rule-list classifier.

    Parameters
    ----------
    max_rules_per_class:
        Safety cap on the rule-set size per class.
    prune_fraction:
        Held-out fraction used for reduced-error pruning.
    min_prune_accuracy:
        A rule is accepted only if its Laplace precision on the prune
        split exceeds this (0.5 = better than chance).
    random_state:
        Seed for the grow/prune shuffles.
    """

    def __init__(
        self,
        max_rules_per_class: int = 16,
        prune_fraction: float = 1.0 / 3.0,
        min_prune_accuracy: float = 0.5,
        random_state: int = 0,
    ):
        super().__init__()
        if not 0.0 < prune_fraction < 1.0:
            raise ValueError("prune_fraction must be in (0, 1)")
        self.max_rules_per_class = max_rules_per_class
        self.prune_fraction = prune_fraction
        self.min_prune_accuracy = min_prune_accuracy
        self.random_state = random_state
        self.rules_: list[Rule] = []
        self.default_counts_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RipperClassifier":
        X, y = self._setup_fit(X, y)
        rng = np.random.default_rng(self.random_state)
        self.rules_ = []
        k = self.n_classes_
        class_counts = np.bincount(y, minlength=k)
        # Rarest class first; the most frequent class becomes the default.
        order = [c for c in np.argsort(class_counts, kind="stable") if class_counts[c] > 0]
        remaining = np.ones(len(y), dtype=bool)
        for target in order[:-1]:
            rules = self._learn_class(X, y, remaining, int(target), rng)
            for rule in rules:
                rule.class_counts = np.bincount(y[rule.covers(X)], minlength=k).astype(float)
                self.rules_.append(rule)
                remaining &= ~rule.covers(X)
            # Uncovered examples of this class fall through to later rules
            # / the default, mirroring RIPPER's sequential covering.
            remaining &= y != target
        if remaining.any():
            self.default_counts_ = np.bincount(y[remaining], minlength=k).astype(float)
        else:
            self.default_counts_ = class_counts.astype(float)
        return self

    def _learn_class(
        self,
        X: np.ndarray,
        y: np.ndarray,
        remaining: np.ndarray,
        target: int,
        rng: np.random.Generator,
    ) -> list[Rule]:
        rules: list[Rule] = []
        pos_mask = remaining & (y == target)
        neg_mask = remaining & (y != target)
        while pos_mask.any() and len(rules) < self.max_rules_per_class:
            pos_idx = np.flatnonzero(pos_mask)
            neg_idx = np.flatnonzero(neg_mask)
            rng.shuffle(pos_idx)
            rng.shuffle(neg_idx)
            n_pos_grow = max(1, int(round(len(pos_idx) * (1 - self.prune_fraction))))
            n_neg_grow = int(round(len(neg_idx) * (1 - self.prune_fraction)))
            grow_pos, prune_pos = pos_idx[:n_pos_grow], pos_idx[n_pos_grow:]
            grow_neg, prune_neg = neg_idx[:n_neg_grow], neg_idx[n_neg_grow:]

            rule = self._grow_rule(X, grow_pos, grow_neg, target)
            if rule is None:
                break
            if len(prune_pos) + len(prune_neg) > 0:
                rule = self._prune_rule(rule, X, prune_pos, prune_neg)
            # Acceptance: Laplace precision on the prune split (fall back
            # to the grow split when the prune split is empty).
            ep, en = (prune_pos, prune_neg) if len(prune_pos) + len(prune_neg) > 0 else (
                grow_pos, grow_neg
            )
            p = int(rule.covers(X[ep]).sum())
            n = int(rule.covers(X[en]).sum())
            if (p + 1.0) / (p + n + 2.0) <= self.min_prune_accuracy:
                break
            rules.append(rule)
            covered = rule.covers(X)
            pos_mask &= ~covered
        return rules

    def _grow_rule(
        self, X: np.ndarray, pos_idx: np.ndarray, neg_idx: np.ndarray, target: int
    ) -> Rule | None:
        if len(pos_idx) == 0:
            return None
        rule = Rule(target=target)
        pos_cov = np.ones(len(pos_idx), dtype=bool)
        neg_cov = np.ones(len(neg_idx), dtype=bool)
        used_attrs: set[int] = set()
        while neg_cov.any():
            P, N = float(pos_cov.sum()), float(neg_cov.sum())
            best = None  # (gain, attr, value, pos_mask, neg_mask)
            for attr in range(X.shape[1]):
                if attr in used_attrs:
                    continue
                v = int(self.n_values_[attr])
                if v <= 1:
                    continue
                pos_vals = X[pos_idx[pos_cov], attr]
                neg_vals = X[neg_idx[neg_cov], attr]
                p_v = np.bincount(pos_vals, minlength=v).astype(float)
                n_v = np.bincount(neg_vals, minlength=v).astype(float)
                with np.errstate(divide="ignore", invalid="ignore"):
                    gain_v = p_v * (
                        np.log2(np.where(p_v > 0, p_v / (p_v + n_v), 1.0))
                        - math.log2(P / (P + N))
                    )
                gain_v[p_v == 0] = -np.inf
                value = int(np.argmax(gain_v))
                gain = float(gain_v[value])
                if best is None or gain > best[0]:
                    best = (gain, attr, value)
            if best is None or best[0] <= 1e-12:
                break
            _, attr, value = best
            rule.literals.append((attr, value))
            used_attrs.add(attr)
            pos_cov &= X[pos_idx, attr] == value
            neg_cov &= X[neg_idx, attr] == value
            if not pos_cov.any():  # degenerate: lost all positives
                rule.literals.pop()
                break
        if not rule.literals:
            return None
        return rule

    def _prune_rule(
        self, rule: Rule, X: np.ndarray, prune_pos: np.ndarray, prune_neg: np.ndarray
    ) -> Rule:
        """Reduced-error pruning: keep the literal prefix maximising
        ``(p - n) / (p + n)`` on the prune split."""
        Xp, Xn = X[prune_pos], X[prune_neg]
        best_len, best_value = len(rule.literals), -math.inf
        pos_mask = np.ones(len(Xp), dtype=bool)
        neg_mask = np.ones(len(Xn), dtype=bool)
        values = []
        for attr, value in rule.literals:
            pos_mask &= Xp[:, attr] == value
            neg_mask &= Xn[:, attr] == value
            p, n = float(pos_mask.sum()), float(neg_mask.sum())
            values.append((p - n) / (p + n) if p + n > 0 else -math.inf)
        for length, v in enumerate(values, start=1):
            if v > best_value:  # ties favour the shorter (more pruned) rule
                best_value, best_len = v, length
        return Rule(target=rule.target, literals=rule.literals[:best_len])

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = np.asarray(X, dtype=np.int64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        k = self.n_classes_
        out = np.empty((len(X), k))
        unassigned = np.ones(len(X), dtype=bool)
        for rule in self.rules_:
            hit = unassigned & rule.covers(X)
            if hit.any():
                counts = rule.class_counts
                out[hit] = (counts + 1.0) / (counts.sum() + k)
                unassigned &= ~hit
            if not unassigned.any():
                return out
        counts = self.default_counts_
        out[unassigned] = (counts + 1.0) / (counts.sum() + k)
        return out

    @property
    def n_rules(self) -> int:
        self._check_fitted()
        return len(self.rules_)
