"""C4.5-style decision tree (Quinlan 1993).

The variant the paper uses as its best sub-model engine:

* multiway splits on categorical attributes, chosen by **gain ratio**
  among attributes with at least average information gain (Quinlan's
  guard against the ratio favouring near-trivial splits);
* **pessimistic error pruning** with the standard C4.5 confidence-bound
  estimate (CF = 0.25 by default) via subtree replacement;
* leaf class probabilities ``p(l_i | x) = n_i / n`` as described in §3 of
  the paper, Laplace-smoothed so no class ever gets probability zero.

Unseen attribute values at prediction time fall through to the split
node's own class distribution (the C4.5 "most likely subtree" fallback).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import CategoricalClassifier

_Z_FOR_CF = {0.25: 0.6744897501960817}  # Phi^{-1}(1 - CF)


def _z_value(cf: float) -> float:
    """Normal quantile for the pruning confidence factor.

    Uses scipy-free rational approximation (Acklam) — accurate to ~1e-9,
    far below what pruning sensitivity requires.
    """
    if cf in _Z_FOR_CF:
        return _Z_FOR_CF[cf]
    p = 1.0 - cf
    # Acklam's inverse-normal approximation.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    plow, phigh = 0.02425, 1 - 0.02425
    if p < plow:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= phigh:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


def _pessimistic_errors(n: float, e: float, z: float) -> float:
    """C4.5's upper confidence bound on the error count of a leaf.

    ``n`` examples with ``e`` observed errors; returns the pessimistic
    *count* ``n * U_CF(e, n)`` using the classic Wilson-style bound.
    """
    if n == 0:
        return 0.0
    f = e / n
    z2 = z * z
    bound = (f + z2 / (2 * n) + z * math.sqrt(f / n - f * f / n + z2 / (4 * n * n))) / (
        1 + z2 / n
    )
    return n * bound


@dataclass
class _TreeNode:
    """One tree node: a leaf, or a multiway split with per-value children."""

    counts: np.ndarray                      #: class counts of training rows here
    attr: int | None = None                 #: split attribute (None => leaf)
    children: dict[int, "_TreeNode"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.attr is None

    @property
    def n(self) -> int:
        return int(self.counts.sum())

    @property
    def errors(self) -> int:
        return self.n - int(self.counts.max())

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(child.depth() for child in self.children.values())

    def n_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return sum(child.n_leaves() for child in self.children.values())


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def trees_equal(a: _TreeNode | None, b: _TreeNode | None) -> bool:
    """Structural equality of two fitted trees.

    Equal means: same split attribute at every node, same per-node class
    counts, same child values — which together imply identical
    ``predict_proba`` output for any input.
    """
    if a is None or b is None:
        return a is b
    if a.attr != b.attr or not np.array_equal(a.counts, b.counts):
        return False
    if a.children.keys() != b.children.keys():
        return False
    return all(trees_equal(child, b.children[v]) for v, child in a.children.items())


class C45Classifier(CategoricalClassifier):
    """Gain-ratio decision tree with pessimistic pruning.

    Parameters
    ----------
    min_samples_split:
        Do not split nodes with fewer examples.
    max_depth:
        Depth cap (None = unlimited).
    prune:
        Apply C4.5 pessimistic subtree replacement after growing.
    cf:
        Pruning confidence factor (smaller = more aggressive pruning).
    """

    def __init__(
        self,
        min_samples_split: int = 2,
        max_depth: int | None = None,
        prune: bool = True,
        cf: float = 0.25,
    ):
        super().__init__()
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if not 0 < cf < 0.5:
            raise ValueError("cf must be in (0, 0.5)")
        self.min_samples_split = min_samples_split
        self.max_depth = max_depth
        self.prune = prune
        self.cf = cf
        self.root_: _TreeNode | None = None

    #: The ensemble trainer may hand this classifier precomputed
    #: root-level contingency tables (``fit(..., root_tables=...)``).
    accepts_root_tables = True

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        root_tables: "list[np.ndarray] | None" = None,
    ) -> "C45Classifier":
        """Grow (and optionally prune) the tree.

        ``root_tables`` — one ``(n_values_[a], n_classes_)`` integer
        contingency table per attribute, counting (attribute value,
        class) pairs over the full training set — lets the root split
        search skip its histogram pass.  The ensemble trainer computes
        these once for all L sub-models (see
        :class:`repro.core.model.CrossFeatureModel`); the fitted tree is
        identical with or without them.
        """
        X, y = self._setup_fit(X, y)
        self._z = _z_value(self.cf)
        if self._fast_fit_usable():
            self.root_ = self._grow(X, y, np.arange(len(y)), depth=0,
                                    root_tables=root_tables)
        else:
            self.root_ = self._grow_reference(X, y, np.arange(len(y)), depth=0)
        if self.prune:
            self._prune_node(self.root_)
        return self

    def _fit_reference(self, X: np.ndarray, y: np.ndarray) -> "C45Classifier":
        """Reference fit (pre-vectorization growth path).

        Kept callable so the identity tests and the ``fit/`` benchmark
        suite can grow a guaranteed-reference tree to compare against.
        """
        X, y = self._setup_fit(X, y)
        self._z = _z_value(self.cf)
        self.root_ = self._grow_reference(X, y, np.arange(len(y)), depth=0)
        if self.prune:
            self._prune_node(self.root_)
        return self

    def _fast_fit_usable(self) -> bool:
        """Whether the vectorized split search is exact for this data.

        The vectorized path computes every entropy / split-info sum
        *sequentially* (via ``cumsum`` over zero-padded rows; exact zeros
        are additive identities).  The reference path uses ``np.sum``
        over compacted positive entries, which numpy evaluates
        sequentially only below 8 elements — beyond that it switches to
        pairwise summation with a different rounding order.  All sums in
        the reference run over at most ``n_classes_`` (row entropy) or
        ``max(n_values_)`` (split info / conditional entropy) terms, so
        bit-identity is guaranteed whenever both stay below 8 — always
        true for the paper's 5-bucket discretization (6 values with the
        out-of-range bucket).  Larger cardinalities fall back to the
        reference implementation, and ``REPRO_FAST_FIT=0`` forces it.
        """
        if os.environ.get("REPRO_FAST_FIT", "1") == "0":
            return False
        if self.n_classes_ >= 8:
            return False
        return len(self.n_values_) == 0 or int(self.n_values_.max()) < 8

    def _class_counts(self, y_subset: np.ndarray) -> np.ndarray:
        return np.bincount(y_subset, minlength=self.n_classes_)

    def _grow(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        depth: int,
        root_tables: "list[np.ndarray] | None" = None,
    ) -> _TreeNode:
        """Vectorized node growth — bit-identical to :meth:`_grow_reference`.

        Per node, ONE fused ``bincount`` builds the contingency
        histograms of every attribute at once (a ``(L, k_max, C)``
        tensor), entropies are computed row-wise over the whole tensor,
        and children are partitioned with a single stable argsort instead
        of one boolean scan per value.  Every floating-point reduction
        mirrors the reference's operation order exactly (see
        :meth:`_fast_fit_usable`), so split decisions — and therefore the
        tree — are identical to the last bit.
        """
        y_sub = y[idx]
        counts = self._class_counts(y_sub)
        node = _TreeNode(counts=counts)
        if (
            len(idx) < self.min_samples_split
            or (counts > 0).sum() <= 1
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node

        C = self.n_classes_
        L = X.shape[1]
        kmax = int(self.n_values_.max()) if L else 0
        if L == 0 or kmax <= 1:
            return node
        n = float(len(idx))
        X_sub = X[idx]

        if root_tables is not None:
            if len(root_tables) != L:
                raise ValueError(
                    f"root_tables has {len(root_tables)} tables, expected {L}"
                )
            hist = np.zeros((L, kmax, C), dtype=np.int64)
            for a, table in enumerate(root_tables):
                hist[a, : table.shape[0], :] = table
        else:
            # One histogram pass: offset each attribute's (value, class)
            # pair into its own k_max*C block and bincount the lot.
            offsets = np.arange(L, dtype=np.int64) * (kmax * C)
            flat = X_sub * C + y_sub[:, None] + offsets[None, :]
            hist = np.bincount(flat.ravel(), minlength=L * kmax * C)
            hist = hist.reshape(L, kmax, C)

        value_totals = hist.sum(axis=2)                       # (L, kmax)
        present = value_totals > 0
        n_present = present.sum(axis=1)                       # (L,)

        # Row-wise entropy of every value row.  Padded / absent rows are
        # all-zero and contribute exact zeros; cumsum keeps the
        # summation sequential, matching the reference's np.sum over
        # compacted entries (< 8 terms, see _fast_fit_usable).
        vt_safe = np.where(present, value_totals, 1)
        p = hist / vt_safe[:, :, None]
        pos = p > 0
        logp = np.zeros_like(p)
        np.log2(p, where=pos, out=logp)
        row_ent = -(p * logp).cumsum(axis=2)[:, :, -1]        # (L, kmax)

        # Conditional entropy: the reference accumulates
        # (value_total / n) * entropy(row) left to right over present
        # values; cumsum over the zero-padded terms reproduces that.
        weights = value_totals / n
        cond_terms = np.where(present, weights * row_ent, 0.0)
        cond = cond_terms.cumsum(axis=1)[:, -1]               # (L,)

        base_entropy = _entropy(counts)
        gain = base_entropy - cond                            # (L,)

        # Split info over the same weights (only present values enter).
        logw = np.zeros_like(weights)
        np.log2(weights, where=weights > 0, out=logw)
        split_info = -(weights * logw).cumsum(axis=1)[:, -1]  # (L,)

        valid = (self.n_values_ > 1) & (n_present > 1) & (split_info > 0)
        if not valid.any():
            return node
        attrs = np.flatnonzero(valid)
        gains_v = gain[valid]
        # Quinlan's guard: only attributes with at least average gain
        # compete on gain ratio (sequential mean, like the reference).
        mean_gain = gains_v.cumsum()[-1] / len(gains_v)
        ratios = gains_v / split_info[valid]
        eligible = gains_v >= mean_gain - 1e-12
        best_pos = int(np.argmax(np.where(eligible, ratios, -np.inf)))
        best_attr = int(attrs[best_pos])
        if gains_v[best_pos] <= 1e-12:
            return node

        # Partition children with one stable argsort: groups come out in
        # ascending value order with original row order inside each
        # group — exactly np.unique + per-value boolean masks.
        node.attr = best_attr
        col = X_sub[:, best_attr]
        order = np.argsort(col, kind="stable")
        sorted_idx = idx[order]
        sorted_col = col[order]
        boundaries = np.flatnonzero(sorted_col[1:] != sorted_col[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_col)]))
        for s, e in zip(starts, ends):
            node.children[int(sorted_col[s])] = self._grow(
                X, y, sorted_idx[s:e], depth + 1
            )
        return node

    def _grow_reference(self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int) -> _TreeNode:
        """Reference per-bucket growth (pre-vectorization behaviour)."""
        y_sub = y[idx]
        counts = self._class_counts(y_sub)
        node = _TreeNode(counts=counts)
        if (
            len(idx) < self.min_samples_split
            or (counts > 0).sum() <= 1
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node

        base_entropy = _entropy(counts)
        n = float(len(idx))
        best_attr, best_ratio = None, 0.0
        gains: list[tuple[int, float, float]] = []
        for attr in range(X.shape[1]):
            col = X[idx, attr]
            k = int(self.n_values_[attr])
            if k <= 1:
                continue
            # Contingency table via one flat bincount.
            table = np.bincount(col * self.n_classes_ + y_sub,
                                minlength=k * self.n_classes_).reshape(k, self.n_classes_)
            value_totals = table.sum(axis=1)
            present = value_totals > 0
            if present.sum() <= 1:
                continue
            cond = 0.0
            for vt, row in zip(value_totals[present], table[present]):
                cond += (vt / n) * _entropy(row)
            gain = base_entropy - cond
            p_v = value_totals[present] / n
            split_info = float(-(p_v * np.log2(p_v)).sum())
            if split_info <= 0:
                continue
            gains.append((attr, gain, gain / split_info))
        if not gains:
            return node
        # Quinlan's guard: only attributes with at least average gain
        # compete on gain ratio.
        mean_gain = sum(g for _, g, _ in gains) / len(gains)
        eligible = [t for t in gains if t[1] >= mean_gain - 1e-12]
        best_attr, best_gain, best_ratio = max(eligible, key=lambda t: t[2])
        if best_gain <= 1e-12:
            return node

        node.attr = best_attr
        col = X[idx, best_attr]
        for value in np.unique(col):
            child_idx = idx[col == value]
            node.children[int(value)] = self._grow_reference(X, y, child_idx, depth + 1)
        return node

    # ------------------------------------------------------------------
    def _prune_node(self, node: _TreeNode) -> float:
        """Bottom-up subtree replacement; returns pessimistic error count."""
        leaf_errors = _pessimistic_errors(node.n, node.errors, self._z)
        if node.is_leaf:
            return leaf_errors
        subtree_errors = sum(self._prune_node(c) for c in node.children.values())
        if leaf_errors <= subtree_errors + 0.1:
            node.attr = None
            node.children.clear()
            return leaf_errors
        return subtree_errors

    # ------------------------------------------------------------------
    def _node_proba(self, node: _TreeNode) -> np.ndarray:
        """Laplace-smoothed class distribution of one node."""
        counts = node.counts
        return (counts + 1.0) / (counts.sum() + self.n_classes_)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Batched tree walk: rows move through the tree as index arrays.

        Each split partitions its row block with one vectorized
        comparison per child instead of a Python dict lookup per row.
        Answers are identical to :meth:`_predict_proba_rowwise` (same
        node reached, same smoothing expression) — the rowwise form is
        kept as the reference the tests and benchmarks compare against.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=np.int64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        out = np.empty((len(X), self.n_classes_))
        if len(X) == 0:
            return out
        stack: list[tuple[_TreeNode, np.ndarray]] = [(self.root_, np.arange(len(X)))]
        while stack:
            node, rows = stack.pop()
            if node.is_leaf:
                out[rows] = self._node_proba(node)
                continue
            col = X[rows, node.attr]
            routed = np.zeros(len(rows), dtype=bool)
            for value, child in node.children.items():
                mask = col == value
                if mask.any():
                    stack.append((child, rows[mask]))
                    routed |= mask
            if not routed.all():
                # Unseen values: answer from this node's own counts.
                out[rows[~routed]] = self._node_proba(node)
        return out

    def _predict_proba_rowwise(self, X: np.ndarray) -> np.ndarray:
        """Reference per-row walk (pre-vectorization behaviour)."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.int64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        out = np.empty((len(X), self.n_classes_))
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                child = node.children.get(int(row[node.attr]))
                if child is None:
                    break  # unseen value: answer from this node's counts
                node = child
            out[i] = self._node_proba(node)
        return out

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        self._check_fitted()
        return self.root_.depth()

    @property
    def n_leaves(self) -> int:
        self._check_fitted()
        return self.root_.n_leaves()
