"""Simplified TCP: ACK-clocked sliding window with AIMD and RTO recovery.

A bulk-transfer (FTP-like) source that keeps the pipe full, which is how
the paper's TCP scenarios load the network.  The model is go-back-N with

* slow start / congestion avoidance (AIMD on the congestion window),
* a retransmission timer with exponential backoff,
* cumulative ACKs emitted by the sink for every arriving segment.

This is intentionally not a full TCP stack — Feature Set II never looks
inside data packets — but it reproduces the closed-loop dynamics that make
TCP traces different from CBR ones: bursts shaped by ACK arrival, silence
after route loss, retransmission storms after repair, and reverse-path ACK
flows that exercise routes in both directions.
"""

from __future__ import annotations

import math

from repro.simulation.engine import Event
from repro.simulation.node import Node
from repro.simulation.packet import Packet


class TcpSink:
    """Receiving end: delivers in order and sends cumulative ACKs."""

    ACK_SIZE = 40

    def __init__(self, node: Node, peer: int, flow_id: int):
        self.node = node
        self.peer = peer
        self.flow_id = flow_id
        self.expected = 0
        self.received_out_of_order: set[int] = set()
        self.delivered = 0
        node.register_agent(flow_id, self)

    def on_receive(self, packet: Packet) -> None:
        """Accept a data segment and emit a cumulative ACK."""
        seq = packet.info.get("tcp_seq")
        if seq is None:
            return
        if seq >= self.expected:
            self.received_out_of_order.add(seq)
            while self.expected in self.received_out_of_order:
                self.received_out_of_order.discard(self.expected)
                self.expected += 1
                self.delivered += 1
        self.node.send_data(
            self.peer,
            size=self.ACK_SIZE,
            flow_id=self.flow_id,
            info={"tcp_ack": self.expected},
        )


class TcpSource:
    """Sending end: window-limited bulk transfer."""

    def __init__(
        self,
        node: Node,
        dest: int,
        flow_id: int,
        packet_size: int = 512,
        start: float = 0.0,
        stop: float = math.inf,
        initial_rto: float = 3.0,
        max_rto: float = 60.0,
        max_cwnd: float = 16.0,
        pacing: float = 0.05,
        app_rate: float | None = None,
    ):
        self.node = node
        self.dest = dest
        self.flow_id = flow_id
        self.packet_size = packet_size
        self.stop = stop
        self.initial_rto = initial_rto
        self.max_rto = max_rto
        self.max_cwnd = max_cwnd
        self.pacing = pacing
        self.app_rate = app_rate

        self.send_base = 0
        self.next_seq = 0
        self._app_limit = math.inf if app_rate is None else 0
        self.cwnd = 1.0
        self.ssthresh = 8.0
        self.rto = initial_rto
        self.segments_sent = 0
        self.timeouts = 0
        self._timer: Event | None = None
        node.register_agent(flow_id, self)
        node.sim.schedule_at(max(start, node.sim.now), self._fill_window)
        if app_rate is not None:
            if app_rate <= 0:
                raise ValueError("app_rate must be positive")
            node.sim.schedule_at(max(start, node.sim.now), self._app_tick)

    # ------------------------------------------------------------------
    def _app_tick(self) -> None:
        """Application data generation (bounded-rate source).

        Without this, a bulk source saturates the network; with it, the
        flow is application-limited but still ACK-clocked, preserving the
        closed-loop dynamics while keeping simulations tractable.
        """
        sim = self.node.sim
        if sim.now >= self.stop:
            return
        self._app_limit += 1
        self._fill_window()
        sim.schedule(1.0 / float(self.app_rate), self._app_tick)

    def _fill_window(self) -> None:
        sim = self.node.sim
        if sim.now >= self.stop:
            self._cancel_timer()
            return
        window_edge = min(self.send_base + self.cwnd, self._app_limit)
        budget = int(window_edge) - self.next_seq
        for i in range(max(budget, 0)):
            # Pace back-to-back segments slightly apart; the interface
            # queue would serialize them anyway, this just avoids bursts
            # of simultaneous events.
            sim.schedule(i * self.pacing, self._send_segment, self.next_seq)
            self.next_seq += 1
        if self._timer is None and self.send_base < self.next_seq:
            self._arm_timer()

    def _send_segment(self, seq: int) -> None:
        if self.node.sim.now >= self.stop or seq < self.send_base:
            return
        self.segments_sent += 1
        self.node.send_data(
            self.dest,
            size=self.packet_size,
            flow_id=self.flow_id,
            info={"tcp_seq": seq},
        )

    def on_receive(self, packet: Packet) -> None:
        """Process a cumulative ACK: advance the window, grow cwnd."""
        ack = packet.info.get("tcp_ack")
        if ack is None or ack <= self.send_base:
            return
        self.send_base = ack
        self.rto = self.initial_rto  # fresh progress resets the backoff
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + 1.0, self.max_cwnd)  # slow start
        else:
            self.cwnd = min(self.cwnd + 1.0 / self.cwnd, self.max_cwnd)
        self._cancel_timer()
        if self.send_base < self.next_seq:
            self._arm_timer()
        self._fill_window()

    # ------------------------------------------------------------------
    def _arm_timer(self) -> None:
        self._timer = self.node.sim.schedule(self.rto, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if self.node.sim.now >= self.stop or self.send_base >= self.next_seq:
            return
        self.timeouts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.next_seq = self.send_base  # go-back-N
        self.rto = min(self.rto * 2.0, self.max_rto)
        self._fill_window()
