"""Random connection-pattern generation (ns-2 ``cbrgen``-style).

The paper sets *maximum number of connections* to 100; like ``cbrgen`` we
draw distinct ordered (source, destination) pairs and stagger their start
times uniformly over an initial window so the network warms up gradually.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Connection:
    """One end-to-end traffic flow."""

    src: int
    dst: int
    start: float
    flow_id: int


def generate_connections(
    n_nodes: int,
    max_connections: int,
    rng: random.Random,
    start_window: float = 180.0,
) -> list[Connection]:
    """Draw up to ``max_connections`` distinct ordered node pairs.

    Every pair is distinct (no duplicated flows) and loops (src == dst) are
    excluded.  When the node count cannot support the requested number of
    connections, all possible pairs are used.
    """
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes for traffic")
    n_pairs = min(max_connections, n_nodes * (n_nodes - 1))
    pairs: set[tuple[int, int]] = set()
    while len(pairs) < n_pairs:
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes)
        if src != dst:
            pairs.add((src, dst))
    ordered = sorted(pairs)
    rng.shuffle(ordered)
    return [
        Connection(src=s, dst=d, start=rng.uniform(0.0, start_window), flow_id=i)
        for i, (s, d) in enumerate(ordered)
    ]
