"""Constant-bit-rate (UDP) traffic agents.

``CbrSource`` sends a fixed-size packet every ``1/rate`` seconds — the
paper's rate of 0.25 pkt/s means one packet every four seconds per flow.
A tiny jitter keeps flows from phase-locking.  ``CbrSink`` just counts.
"""

from __future__ import annotations

import math

from repro.simulation.node import Node
from repro.simulation.packet import Packet


class CbrSink:
    """Receiving end of a CBR flow — counts delivered packets."""

    def __init__(self, node: Node, flow_id: int):
        self.node = node
        self.flow_id = flow_id
        self.received = 0
        node.register_agent(flow_id, self)

    def on_receive(self, packet: Packet) -> None:
        """Count a delivered CBR packet."""
        self.received += 1


class CbrSource:
    """Sending end of a CBR flow."""

    def __init__(
        self,
        node: Node,
        dest: int,
        flow_id: int,
        rate: float = 0.25,
        packet_size: int = 512,
        start: float = 0.0,
        stop: float = math.inf,
        jitter: float = 0.05,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.node = node
        self.dest = dest
        self.flow_id = flow_id
        self.interval = 1.0 / rate
        self.packet_size = packet_size
        self.stop = stop
        self.jitter = jitter
        self.sent = 0
        node.register_agent(flow_id, self)
        node.sim.schedule_at(max(start, node.sim.now), self._tick)

    def _tick(self) -> None:
        sim = self.node.sim
        if sim.now >= self.stop:
            return
        self.node.send_data(self.dest, size=self.packet_size, flow_id=self.flow_id)
        self.sent += 1
        delay = self.interval + sim.rng.uniform(-self.jitter, self.jitter)
        sim.schedule(max(delay, 0.001), self._tick)

    def on_receive(self, packet: Packet) -> None:
        """CBR is open-loop; return traffic (none expected) is ignored."""
