"""Traffic generation: UDP/CBR and simplified TCP agents.

The paper's scenarios attach up to 100 random constant-bit-rate (UDP) or
bulk-transfer (TCP) connections at rate 0.25 pkt/s.  Feature Set II only
distinguishes data packets from routing control packets, so the transport
models here aim for the *traffic shapes* that distinguish the two scenario
families: open-loop periodic sends for CBR, closed-loop ACK-clocked bursts
with retransmission for TCP.
"""

from repro.traffic.cbr import CbrSink, CbrSource
from repro.traffic.connections import Connection, generate_connections
from repro.traffic.tcp import TcpSink, TcpSource

__all__ = [
    "CbrSink",
    "CbrSource",
    "Connection",
    "TcpSink",
    "TcpSource",
    "generate_connections",
]
