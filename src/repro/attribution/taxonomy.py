"""Declarative anomaly taxonomy: activity signatures → typed classes.

The cross-feature model tells us *that* a window is anomalous; the
taxonomy names *what kind* of anomaly it looks like.  Two views feed a
verdict:

* **Blame** — every sub-model whose calibrated probability collapses
  contributes ``1 - calibrated`` to its labelled feature; features roll
  up into coarse semantic groups (:data:`GROUPS`) whose normalised
  shares name the culprit features on the alarm line.
* **Signed activity** — blame says *which* predictions broke, but the
  attack classes differ mainly in the *direction* traffic moved (a
  flood pushes RREQ receipts up; a blackhole pulls data receipts down).
  Each alarming window's features are z-scored against a trailing
  window of recent *non-alarming* rows, squashed with
  ``tanh(z / damping)``, and averaged into fine per-``{packet-type} ×
  {direction}`` groups (:func:`fine_group`).  Each anomaly type declares
  one activity *variant* per protocol regime it was profiled on, and
  matches by the best centred cosine against its variants.

Classification prefers the activity view (it separates the attack
taxonomy; see ``BENCH_attribution.json``) and falls back to blame
shares when there is no history or no MANET vocabulary to z-score
against.  Either way the answer is ``"unknown"`` below a documented
floor.

The registry is **fit-free** by design, mirroring Sintra's
``ANOMALY_TYPES`` idiom: nothing here is trained, so adding or tuning a
type is a reviewable data edit, the mapping cannot drift with a
retrained model, and a verdict can be audited by reading this file next
to the alarm's top features.  All thresholds live in module constants
with their rationale attached.  The variant vectors below are
hand-rounded trailing-window activity centroids profiled per attack ×
protocol at the ``BENCH_PLAN`` scale (20 nodes, 1000 s, seeds 11-13/41)
— re-run ``python -m repro bench --suite attribution`` after editing
them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = [
    "ACTIVITY_DAMPING",
    "ACTIVITY_MIN_MATCH",
    "ANOMALY_TYPES",
    "AnomalyType",
    "GROUPS",
    "MIN_MATCH",
    "UNKNOWN",
    "classify_activity",
    "classify_shares",
    "feature_group",
    "fine_group",
    "group_shares",
    "signed_activity",
]

#: Verdict name used when no signature clears :data:`MIN_MATCH`.
UNKNOWN = "unknown"

#: Minimum signature-match score for a typed verdict.  Shares are
#: normalised (they sum to 1 over the groups), so a *diffuse* anomaly —
#: blame spread evenly over all groups — scores each signature near the
#: mean of its positive weights times ``1/len(GROUPS)``; 0.25 sits well
#: above that diffuse floor while staying below the 0.4–0.9 matches the
#: real attack taxonomy produces (see ``BENCH_attribution.json``).
MIN_MATCH = 0.25

#: Minimum centred-cosine for a typed *activity* verdict.  Profiled
#: attack windows match their own class at 0.3–0.8; a direction-free
#: (flat) activity vector scores ~0 against every centred variant, so
#: 0.15 rejects flat/contradictory windows without orphaning the real
#: attack taxonomy.
ACTIVITY_MIN_MATCH = 0.15

#: ``tanh(z / damping)`` squash for signed activities.  4.0 keeps a
#: 1-sigma wiggle near-linear (0.25) while a 20-sigma storm saturates
#: at 1 — per-window magnitudes stay comparable across attack kinds.
ACTIVITY_DAMPING = 4.0

#: Feature groups, in canonical order.  ``other`` collects index-only
#: features (no names fitted) and anything outside the MANET vocabulary.
GROUPS = (
    "rreq_storm",
    "route_error",
    "data_delivery",
    "control_mix",
    "route_churn",
    "route_shape",
    "mobility",
    "other",
)

_CHURN = {
    "route_add_count",
    "route_removal_count",
    "route_repair_count",
    "total_route_change",
}
_SHAPE = {"average_route_length", "route_find_count", "route_notice_count"}


def feature_group(name: object) -> str:
    """The semantic group of one feature (by its Table 4/5 name).

    Unnamed features (integer labels from a model fitted without
    ``feature_names``) fall into ``"other"`` — the taxonomy still runs,
    it just cannot separate attack classes without the vocabulary.
    """
    if not isinstance(name, str):
        return "other"
    if name.startswith("rreq_"):
        return "rreq_storm"
    if name.startswith("rerr_"):
        return "route_error"
    if name.startswith("data_"):
        return "data_delivery"
    if name.startswith(("route_all_", "rrep_", "hello_")):
        return "control_mix"
    if name in _CHURN:
        return "route_churn"
    if name in _SHAPE:
        return "route_shape"
    if name == "absolute_velocity":
        return "mobility"
    return "other"


#: Count-type traffic features carry the directional signal; IAT
#: statistics are excluded (their deviation *sign* is noise).
_FINE_TRAFFIC = re.compile(
    r"(data|rreq|rrep|rerr|hello|route_all)"
    r"_(sent|received|forwarded|dropped)_\d+s_count$"
)


def fine_group(name: object) -> str | None:
    """The fine signed-activity group of one feature, or None.

    Traffic counts map to ``{packet-type}_{direction}`` (all sampling
    periods of one direction pool together); topology features map to
    ``route_churn`` / ``route_shape`` / ``mobility``.  IAT features and
    anything outside the MANET vocabulary return None — they carry no
    usable direction.
    """
    if not isinstance(name, str):
        return None
    m = _FINE_TRAFFIC.match(name)
    if m:
        return f"{m.group(1)}_{m.group(2)}"
    if name in _CHURN:
        return "route_churn"
    if name in _SHAPE:
        return "route_shape"
    if name == "absolute_velocity":
        return "mobility"
    return None


def signed_activity(
    features: np.ndarray,
    history: np.ndarray,
    groups: list[str | None] | tuple[str | None, ...],
    damping: float = ACTIVITY_DAMPING,
) -> dict[str, float]:
    """Per-fine-group signed deviation of one row vs. normal history.

    ``history`` holds trailing *non-alarming* rows (same columns as
    ``features``); ``groups`` names each column's fine group (None
    columns are skipped).  Each column is z-scored against the history,
    squashed with ``tanh(z / damping)``, and averaged per group — the
    result maps group → activity in [-1, 1], where +1 means "far above
    its recent normal level" and -1 "far below".
    """
    features = np.asarray(features, dtype=float)
    history = np.atleast_2d(np.asarray(history, dtype=float))
    if len(features) != len(groups):
        raise ValueError(f"{len(features)} columns for {len(groups)} groups")
    mean = history.mean(axis=0)
    std = np.maximum(history.std(axis=0), 1e-9)
    squashed = np.tanh((features - mean) / std / damping)
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for g, a in zip(groups, squashed):
        if g is None:
            continue
        sums[g] = sums.get(g, 0.0) + float(a)
        counts[g] = counts.get(g, 0) + 1
    return {g: sums[g] / counts[g] for g in sorted(sums)}


@dataclass(frozen=True)
class AnomalyType:
    """One typed anomaly class.

    ``signature`` maps coarse group name → weight: positive weights say
    "blame concentrated here looks like me", negative weights say
    "blame here argues against me".  The match score of a share vector
    ``s`` is ``sum(w_g * s_g) / sum(max(w_g, 0))`` — 1.0 means all
    blame sits in the positively-weighted groups, proportioned exactly
    like the weights; any blame in negatively-weighted groups subtracts.

    ``variants`` holds zero or more fine-group activity prototypes
    (group → expected signed deviation).  :meth:`match_activity` scores
    an observed activity vector by the best centred cosine over the
    variants — a type carries one variant per protocol regime because
    the same attack leaves visibly different fingerprints under AODV's
    flooding discovery vs. DSR's source routing.
    """

    name: str
    description: str
    signature: Mapping[str, float] = field(default_factory=dict)
    variants: tuple[Mapping[str, float], ...] = ()

    def match(self, shares: Mapping[str, float]) -> float:
        gain = sum(max(w, 0.0) for w in self.signature.values())
        if gain <= 0.0:
            return 0.0
        got = sum(w * shares.get(g, 0.0) for g, w in self.signature.items())
        return got / gain

    def match_activity(self, activity: Mapping[str, float]) -> float:
        """Best centred cosine of ``activity`` against the variants.

        The observed vector is centred (its mean over the shared basis
        subtracted) so a uniform "everything is up" window cannot match
        a shape-specific prototype; stored variants are already centred.
        """
        best = 0.0
        for variant in self.variants:
            basis = sorted(set(activity) | set(variant))
            a = np.array([activity.get(g, 0.0) for g in basis])
            q = np.array([variant.get(g, 0.0) for g in basis])
            a = a - a.mean()
            na, nq = np.linalg.norm(a), np.linalg.norm(q)
            if na < 1e-12 or nq < 1e-12:
                continue
            best = max(best, float(a @ q / (na * nq)))
        return best


#: The registry.  Insertion order is the deterministic tie-break: when
#: two signatures match equally, the earlier entry wins.  The first
#: variant of each attack type is its AODV fingerprint, the second DSR.
ANOMALY_TYPES: dict[str, AnomalyType] = {
    t.name: t
    for t in (
        AnomalyType(
            name="flooding",
            description=(
                "Route-request storm (UpdateStormAttack): bogus "
                "discovery floods every observer — RREQ receipts and "
                "route-control volume surge together while background "
                "hello/error traffic is starved of airtime."
            ),
            signature={
                "rreq_storm": 1.0,
                "control_mix": 0.25,
                "route_churn": 0.15,
                "data_delivery": -0.4,
            },
            variants=(
                {
                    "data_received": 0.07, "hello_dropped": -0.25,
                    "hello_forwarded": -0.25, "hello_received": 0.13,
                    "mobility": -0.26, "rerr_dropped": -0.25,
                    "rerr_forwarded": -0.12, "rerr_received": -0.1,
                    "rerr_sent": -0.1, "route_all_dropped": -0.09,
                    "route_all_forwarded": 0.14, "route_all_received": 0.32,
                    "route_all_sent": 0.46, "route_churn": -0.24,
                    "route_shape": -0.08, "rrep_dropped": -0.06,
                    "rrep_forwarded": 0.15, "rrep_sent": 0.5,
                    "rreq_dropped": -0.25, "rreq_forwarded": 0.1,
                    "rreq_received": 0.34, "rreq_sent": -0.13,
                },
                {
                    "data_received": 0.13, "hello_dropped": -0.21,
                    "hello_forwarded": -0.21, "hello_received": -0.21,
                    "hello_sent": -0.21, "mobility": -0.08,
                    "rerr_dropped": -0.21, "rerr_forwarded": 0.08,
                    "rerr_received": 0.05, "rerr_sent": 0.18,
                    "route_all_dropped": -0.07, "route_all_forwarded": 0.19,
                    "route_all_received": 0.22, "route_churn": 0.15,
                    "route_shape": 0.05, "rrep_dropped": -0.21,
                    "rrep_forwarded": 0.25, "rrep_sent": 0.14,
                    "rreq_dropped": -0.21, "rreq_forwarded": 0.14,
                    "rreq_received": 0.22, "rreq_sent": -0.15,
                },
            ),
        ),
        AnomalyType(
            name="blackhole",
            description=(
                "Route advertisement + absorption (BlackholeAttack): "
                "forged replies pull traffic toward the attacker, so "
                "reply volume rises while the data its neighbours "
                "expected to receive never arrives."
            ),
            signature={
                "data_delivery": 1.0,
                "route_churn": 0.5,
                "control_mix": 0.35,
                "rreq_storm": 0.25,
            },
            variants=(
                {
                    "data_received": -0.28, "data_sent": 0.09,
                    "hello_dropped": -0.18, "hello_forwarded": -0.18,
                    "hello_received": 0.08, "hello_sent": -0.15,
                    "mobility": -0.12, "rerr_dropped": -0.18,
                    "rerr_forwarded": 0.09, "rerr_received": 0.13,
                    "rerr_sent": 0.06, "route_all_dropped": 0.08,
                    "route_all_forwarded": 0.05, "route_all_received": 0.24,
                    "route_all_sent": 0.17, "route_churn": -0.13,
                    "route_shape": -0.18, "rrep_dropped": -0.15,
                    "rrep_forwarded": 0.11, "rrep_received": -0.21,
                    "rrep_sent": 0.45, "rreq_dropped": -0.18,
                    "rreq_forwarded": 0.08, "rreq_received": 0.24,
                    "rreq_sent": 0.07,
                },
                {
                    "data_received": 0.08, "data_sent": 0.05,
                    "hello_dropped": -0.13, "hello_forwarded": -0.13,
                    "hello_received": -0.13, "hello_sent": -0.13,
                    "mobility": -0.13, "rerr_dropped": -0.13,
                    "rerr_forwarded": 0.11, "rerr_sent": 0.19,
                    "route_all_dropped": 0.11, "route_all_received": 0.11,
                    "route_all_sent": 0.16, "route_churn": -0.11,
                    "route_shape": -0.24, "rrep_dropped": -0.13,
                    "rrep_forwarded": -0.11, "rrep_received": 0.2,
                    "rrep_sent": 0.05, "rreq_dropped": -0.13,
                    "rreq_forwarded": 0.13, "rreq_received": 0.1,
                    "rreq_sent": 0.14,
                },
            ),
        ),
        AnomalyType(
            name="dropping",
            description=(
                "Silent packet dropping (PacketDroppingAttack): the "
                "attacker says nothing, it just eats — the quietest "
                "fingerprint, a mild control-forwarding excess around "
                "re-discovery of the routes it silently broke."
            ),
            signature={
                "data_delivery": 1.0,
                "rreq_storm": -0.5,
                "route_error": -0.3,
                "control_mix": -0.2,
            },
            variants=(
                {
                    "data_received": 0.12, "data_sent": 0.06,
                    "hello_dropped": -0.13, "hello_forwarded": -0.13,
                    "hello_received": 0.07, "mobility": -0.21,
                    "rerr_dropped": -0.13, "rerr_forwarded": 0.15,
                    "rerr_received": 0.1, "rerr_sent": -0.06,
                    "route_all_dropped": -0.06, "route_all_forwarded": 0.18,
                    "route_shape": -0.06, "rrep_dropped": -0.13,
                    "rrep_forwarded": 0.15, "rrep_received": -0.06,
                    "rrep_sent": 0.34, "rreq_dropped": -0.13,
                    "rreq_sent": -0.07,
                },
                {
                    "data_received": -0.16, "data_sent": 0.1,
                    "hello_dropped": -0.13, "hello_forwarded": -0.13,
                    "hello_received": -0.13, "hello_sent": -0.13,
                    "mobility": 0.07, "rerr_dropped": -0.13,
                    "rerr_forwarded": 0.06, "route_all_received": 0.14,
                    "route_churn": -0.09, "route_shape": -0.11,
                    "rrep_dropped": -0.13, "rrep_forwarded": 0.13,
                    "rrep_received": 0.19, "rrep_sent": 0.07,
                    "rreq_dropped": -0.13, "rreq_forwarded": 0.19,
                    "rreq_received": 0.13, "rreq_sent": 0.2,
                },
            ),
        ),
        AnomalyType(
            name="impersonation",
            description=(
                "Forged control traffic in a victim's name "
                "(ImpersonationAttack): RERR receipts spike as forged "
                "errors tear routes down, while data still flows — the "
                "victim is framed, not silenced."
            ),
            signature={
                "route_error": 1.0,
                "route_churn": 0.3,
                "data_delivery": 0.25,
                "control_mix": 0.2,
            },
            variants=(
                {
                    "data_received": 0.19, "data_sent": 0.11,
                    "hello_dropped": -0.06, "hello_forwarded": -0.06,
                    "hello_received": 0.25, "mobility": 0.06,
                    "rerr_dropped": -0.06, "rerr_received": 0.25,
                    "rerr_sent": -0.09, "route_all_dropped": -0.14,
                    "route_all_forwarded": 0.05, "route_churn": -0.15,
                    "route_shape": -0.16, "rrep_dropped": -0.06,
                    "rrep_forwarded": 0.11, "rrep_received": -0.1,
                    "rrep_sent": 0.14, "rreq_dropped": -0.06,
                    "rreq_forwarded": -0.09, "rreq_sent": -0.14,
                },
                {
                    "data_received": 0.25, "hello_dropped": -0.13,
                    "hello_forwarded": -0.13, "hello_received": -0.13,
                    "hello_sent": -0.13, "mobility": -0.2,
                    "rerr_dropped": -0.13, "rerr_forwarded": 0.12,
                    "rerr_received": 0.37, "rerr_sent": 0.06,
                    "route_all_received": 0.15, "rrep_dropped": -0.13,
                    "rrep_received": 0.13, "rrep_sent": 0.16,
                    "rreq_dropped": -0.13, "rreq_forwarded": -0.1,
                },
            ),
        ),
        AnomalyType(
            name="route_instability",
            description=(
                "Topology thrash without an attack-shaped cause: route "
                "churn and shape dominate (high mobility, partition "
                "healing) while traffic groups stay quiet."
            ),
            signature={
                "route_churn": 1.0,
                "route_shape": 0.6,
                "mobility": 0.4,
                "data_delivery": -0.3,
                "rreq_storm": -0.3,
            },
            variants=(
                {
                    "route_churn": 0.45, "route_shape": 0.35,
                    "mobility": 0.35, "rreq_received": -0.2,
                    "route_all_received": -0.2, "data_received": -0.15,
                    "rrep_sent": -0.15, "rerr_received": -0.15,
                    "rreq_sent": -0.1, "data_sent": -0.1,
                },
            ),
        ),
    )
}


def group_shares(
    contributions: np.ndarray, groups: list[str] | tuple[str, ...]
) -> dict[str, float]:
    """Normalised per-group blame shares for one contribution vector.

    ``contributions`` holds one ``1 - calibrated`` blame value per
    sub-model; ``groups`` names each sub-model's group (same order).
    Groups differ wildly in size (24 RREQ features vs. 4 churn
    features), so each group is scored by its *mean* member blame, and
    the means are normalised to sum to 1 — a group is loud because its
    members are loud, not because it has many members.
    """
    contributions = np.asarray(contributions, dtype=float)
    if len(contributions) != len(groups):
        raise ValueError(
            f"{len(contributions)} contributions for {len(groups)} group labels"
        )
    sums: dict[str, float] = {g: 0.0 for g in GROUPS}
    counts: dict[str, int] = {g: 0 for g in GROUPS}
    for g, c in zip(groups, contributions):
        sums[g] = sums.get(g, 0.0) + float(c)
        counts[g] = counts.get(g, 0) + 1
    means = {g: (sums[g] / counts[g] if counts[g] else 0.0) for g in sums}
    total = sum(means.values())
    if total <= 0.0:
        return {g: 0.0 for g in means}
    return {g: m / total for g, m in means.items()}


def classify_shares(
    shares: Mapping[str, float],
    taxonomy: Mapping[str, AnomalyType] | None = None,
    min_match: float = MIN_MATCH,
) -> tuple[str, float]:
    """Best-matching anomaly type for one share vector.

    Returns ``(name, match)``; ``(UNKNOWN, best_match)`` when nothing
    clears ``min_match``.  Ties resolve to registry order — the
    classification is a pure function of its inputs.
    """
    taxonomy = ANOMALY_TYPES if taxonomy is None else taxonomy
    best_name, best_match = UNKNOWN, float("-inf")
    for atype in taxonomy.values():
        m = atype.match(shares)
        if m > best_match:
            best_name, best_match = atype.name, m
    if best_match < min_match:
        return UNKNOWN, max(best_match, 0.0)
    return best_name, best_match


def classify_activity(
    activity: Mapping[str, float],
    taxonomy: Mapping[str, AnomalyType] | None = None,
    min_match: float = ACTIVITY_MIN_MATCH,
) -> tuple[str, float]:
    """Best-matching anomaly type for one signed-activity vector.

    Returns ``(name, match)`` where the match is the winning variant's
    centred cosine; ``(UNKNOWN, best_match)`` when nothing clears
    ``min_match``.  Ties resolve to registry order.  Types with no
    declared variants score 0 — a shares-only type never wins here.
    """
    taxonomy = ANOMALY_TYPES if taxonomy is None else taxonomy
    best_name, best_match = UNKNOWN, float("-inf")
    for atype in taxonomy.values():
        m = atype.match_activity(activity)
        if m > best_match:
            best_name, best_match = atype.name, m
    if best_match < min_match:
        return UNKNOWN, max(best_match, 0.0)
    return best_name, best_match
