"""Typed alarms: feature attribution, anomaly taxonomy, onset estimation.

The paper's §6 argues the cross-feature model "can be examined by human
experts"; this package does the examination automatically.  Three
layers, each usable alone:

* :mod:`~repro.attribution.contributions` — batched per-feature blame
  from sub-model disagreement (``1 - calibrated`` per sub-model).
* :mod:`~repro.attribution.taxonomy` — a declarative, fit-free registry
  mapping signed-activity signatures (per packet-type × direction
  deviations vs. recent normal traffic) to typed classes
  (``flooding``, ``blackhole``, ``dropping``, ``impersonation``,
  ``route_instability``, ``unknown``), with blame shares as fallback.
* :mod:`~repro.attribution.changepoint` — CUSUM onset localisation over
  the score stream plus DETONAR-style per-feature forecast residuals.

:class:`AlarmAttributor` composes them per stream;
:func:`fuse_verdicts` lifts lane verdicts to a fleet verdict.
Attribution runs strictly after scoring and never feeds back into it:
scores, alarms and fused timing are bit-identical with it on or off.
``REPRO_ATTRIBUTION=0`` disables the whole subsystem.
"""

from __future__ import annotations

import os

from repro.attribution.attributor import AlarmAttributor, Verdict, fuse_verdicts
from repro.attribution.changepoint import (
    ChangePoint,
    ScoreCusum,
    residual_flags,
    residual_zscores,
    score_change_points,
)
from repro.attribution.contributions import (
    contribution_matrix,
    feature_labels,
    target_indices,
    top_contributors,
)
from repro.attribution.taxonomy import (
    ACTIVITY_DAMPING,
    ACTIVITY_MIN_MATCH,
    ANOMALY_TYPES,
    GROUPS,
    MIN_MATCH,
    UNKNOWN,
    AnomalyType,
    classify_activity,
    classify_shares,
    feature_group,
    fine_group,
    group_shares,
    signed_activity,
)

__all__ = [
    "ACTIVITY_DAMPING",
    "ACTIVITY_MIN_MATCH",
    "ANOMALY_TYPES",
    "AlarmAttributor",
    "AnomalyType",
    "ChangePoint",
    "GROUPS",
    "MIN_MATCH",
    "ScoreCusum",
    "UNKNOWN",
    "Verdict",
    "attribution_enabled",
    "classify_activity",
    "classify_shares",
    "contribution_matrix",
    "feature_group",
    "feature_labels",
    "fine_group",
    "fuse_verdicts",
    "group_shares",
    "residual_flags",
    "residual_zscores",
    "resolve_attributor",
    "score_change_points",
    "signed_activity",
    "target_indices",
    "top_contributors",
]


def attribution_enabled() -> bool:
    """The ``REPRO_ATTRIBUTION`` kill switch (default: enabled).

    Like ``REPRO_FAST_FIT`` / ``REPRO_EVENT_BATCH``, the environment is
    consulted at *construction* time, so one process can compare runs by
    flipping the variable between them.
    """
    return os.environ.get("REPRO_ATTRIBUTION", "1") != "0"


def resolve_attributor(model, threshold, attribution) -> AlarmAttributor | None:
    """Normalise a detector's ``attribution`` argument.

    ``False``/``None`` → off; ``True`` → a default
    :class:`AlarmAttributor` over the detector's model and threshold; an
    :class:`AlarmAttributor` instance is adopted as-is.  The
    ``REPRO_ATTRIBUTION=0`` kill switch forces off in every case.
    """
    if attribution is None or attribution is False:
        return None
    if not attribution_enabled():
        return None
    if attribution is True:
        return AlarmAttributor(model, threshold)
    return attribution
