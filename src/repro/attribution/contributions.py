"""Per-feature blame from sub-model disagreement.

One cross-feature sub-model per feature predicts that feature from all
the others; when a window alarms, the sub-models whose calibrated
probability collapsed are the ones naming the culprit features.  The
*contribution* of sub-model ``m`` on a row is ``1 - calibrated[m]`` —
0 for a feature that looks perfectly normal, →1 as its sub-model's
probability falls to the floor.

Everything here is read-only over a fitted
:class:`~repro.core.model.CrossFeatureModel` and batched: one
``_sub_model_outputs`` pass covers every alarming row.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import CrossFeatureModel

__all__ = [
    "contribution_matrix",
    "feature_labels",
    "target_indices",
    "top_contributors",
]


def contribution_matrix(model: CrossFeatureModel, X: np.ndarray) -> np.ndarray:
    """``(n_rows, n_sub_models)`` blame matrix for the rows of ``X``.

    Entry ``[r, m]`` is ``1 - calibrated[r, m]`` (raw ``1 - p_true``
    before :meth:`~repro.core.model.CrossFeatureModel.calibrate`), in
    ensemble (sub-model) order.  Rows are independent, so slicing the
    batch reproduces per-row calls bit for bit.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X[None, :]
    _, calibrated = model._calibrated_outputs(X)
    return 1.0 - calibrated


def feature_labels(model: CrossFeatureModel) -> list:
    """Each sub-model's labelled feature (name, or index when unnamed),
    in ensemble order — aligned with :func:`contribution_matrix` columns."""
    if model.feature_names_ is not None:
        return [model.feature_names_[t] for t in model.targets_]
    return [int(t) for t in model.targets_]


def target_indices(model: CrossFeatureModel) -> list[int]:
    """Each sub-model's labelled feature-vector column, ensemble order."""
    return [int(t) for t in model.targets_]


def top_contributors(
    contributions: np.ndarray,
    labels: list,
    targets: list[int],
    top_k: int = 6,
) -> tuple[tuple, tuple[int, ...], tuple[float, ...]]:
    """The ``top_k`` most-blamed features of one contribution vector.

    Returns ``(features, targets, contributions)`` tuples, highest blame
    first.  The sort is stable, so exact ties keep ensemble order — the
    same rule :meth:`CrossFeatureModel.explain` uses.
    """
    contributions = np.asarray(contributions, dtype=float)
    order = np.argsort(-contributions, kind="stable")[:top_k]
    return (
        tuple(labels[m] for m in order),
        tuple(targets[m] for m in order),
        tuple(float(contributions[m]) for m in order),
    )
