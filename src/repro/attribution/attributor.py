"""Per-stream typed-verdict state machine.

An :class:`AlarmAttributor` rides next to one online detector.  It sees
every scored window (advancing the CUSUM change-point statistic and the
forecast-residual history) and, for each *alarming* window, produces a
:class:`Verdict`: the anomaly class, the culprit features with their
blame, which of them are temporally surprising, and the estimated
onset.

It runs strictly *after* scoring — it reads scores and feature rows,
never writes them — so attribution on vs. off cannot change a score, an
alarm, or their bits.  That contract is asserted by the streaming tests
and the ``bench --suite attribution`` harness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.attribution.changepoint import ScoreCusum, residual_flags
from repro.attribution.contributions import (
    contribution_matrix,
    feature_labels,
    target_indices,
    top_contributors,
)
from repro.attribution.taxonomy import (
    ANOMALY_TYPES,
    MIN_MATCH,
    UNKNOWN,
    AnomalyType,
    classify_activity,
    classify_shares,
    feature_group,
    fine_group,
    group_shares,
    signed_activity,
)
from repro.core.model import CrossFeatureModel

__all__ = ["AlarmAttributor", "Verdict", "fuse_verdicts"]


@dataclass(frozen=True)
class Verdict:
    """One typed verdict attached to an alarm.

    ``features``/``targets``/``contributions``/``residual`` are aligned:
    the top culprit features (most blame first), their feature-vector
    column indices, their aggregated blame, and whether each one also
    trips the forecast-residual check (empty until enough history).
    ``onset`` is the CUSUM change-point estimate — None while the score
    collapse has not yet crossed the decision level.  ``windows`` counts
    the alarming windows whose blame was aggregated into this verdict.
    """

    anomaly_type: str
    match: float
    features: tuple
    targets: tuple[int, ...]
    contributions: tuple[float, ...]
    residual: tuple[bool, ...]
    onset: float | None
    windows: int

    def summary(self) -> str:
        """``type=... features=a,b,c`` fragment for alarm lines."""
        feats = ",".join(str(f) for f in self.features[:3])
        text = f"type={self.anomaly_type} features={feats}"
        if self.onset is not None:
            text += f" onset={self.onset:g}s"
        return text


class AlarmAttributor:
    """Typed-verdict state for one detection stream.

    Parameters
    ----------
    model:
        The *same* fitted :class:`CrossFeatureModel` the detector scores
        with (attribution reuses its sub-models and calibration).
    threshold:
        The detector's alarm threshold — the CUSUM reference level.
    taxonomy, min_match:
        Signature registry and unknown-floor (see
        :mod:`repro.attribution.taxonomy`).
    top_k:
        Culprit features per verdict.
    history:
        Alarming windows whose blame is averaged per verdict — smooths
        single-window noise inside an attack burst; the buffer clears
        when the CUSUM statistic drains to zero (the episode healed).
    residual_window, residual_z, residual_min_history:
        Trailing raw-row history length and band for the per-feature
        forecast-residual check.
    """

    def __init__(
        self,
        model: CrossFeatureModel,
        threshold: float,
        taxonomy: Mapping[str, AnomalyType] | None = None,
        min_match: float = MIN_MATCH,
        top_k: int = 6,
        history: int = 8,
        residual_window: int = 24,
        residual_z: float = 4.0,
        residual_min_history: int = 8,
    ):
        if model.discretizer is None:
            raise ValueError("model must be fitted before attribution")
        self.model = model
        self.threshold = float(threshold)
        self.taxonomy = dict(ANOMALY_TYPES if taxonomy is None else taxonomy)
        self.min_match = float(min_match)
        self.top_k = int(top_k)
        self.residual_z = float(residual_z)
        self.residual_min_history = int(residual_min_history)
        self._labels = feature_labels(model)
        self._targets = target_indices(model)
        self._groups = [feature_group(name) for name in self._labels]
        self._subset = model.feature_subset
        # Fine activity groups are indexed by feature-vector column in
        # the model's (subsetted) view — the z-scores live in feature
        # space, not sub-model space.
        names = model.feature_names_
        self._fine_groups = (
            None if names is None else [fine_group(n) for n in names]
        )
        if self._fine_groups is not None and not any(self._fine_groups):
            self._fine_groups = None  # no MANET vocabulary to z-score
        self.cusum = ScoreCusum(self.threshold)
        self._recent_rows: deque[np.ndarray] = deque(maxlen=int(residual_window))
        self._recent_contribs: deque[np.ndarray] = deque(maxlen=int(history))
        self._recent_acts: deque[dict[str, float]] = deque(maxlen=int(history))
        self.verdicts = 0

    def _view(self, features: np.ndarray) -> np.ndarray:
        """The model's view of a raw feature row (subset applied)."""
        features = np.asarray(features, dtype=float)
        if self._subset is not None:
            features = features[self._subset]
        return features

    def attribute(
        self,
        time: float,
        score: float,
        features: np.ndarray,
        alarming: bool,
        contribution: np.ndarray | None = None,
    ) -> Verdict | None:
        """Advance one scored window; return a verdict iff it alarmed.

        ``alarming`` is the detector's own decision (passed in rather
        than re-derived, so the two can never disagree).
        ``contribution`` lets a batched caller (the fleet's per-tick
        bucket) hand in a precomputed :func:`contribution_matrix` row;
        otherwise one is computed here.
        """
        self.cusum.update(time, score)
        row = self._view(features)
        verdict: Verdict | None = None
        if alarming:
            if contribution is None:
                contribution = contribution_matrix(self.model, features)[0]
            self._recent_contribs.append(np.asarray(contribution, dtype=float))
            aggregated = np.mean(np.vstack(self._recent_contribs), axis=0)
            # Classification prefers the signed-activity view (direction
            # separates the attack taxonomy); it needs a vocabulary and
            # enough non-alarming history to z-score against, else fall
            # back to blame shares.
            if (
                self._fine_groups is not None
                and len(self._recent_rows) >= self.residual_min_history
            ):
                self._recent_acts.append(
                    signed_activity(
                        row, np.vstack(self._recent_rows), self._fine_groups
                    )
                )
            if self._recent_acts:
                activity = {
                    g: float(np.mean([a[g] for a in self._recent_acts]))
                    for g in self._recent_acts[0]
                }
                anomaly_type, match = classify_activity(activity, self.taxonomy)
            else:
                shares = group_shares(aggregated, self._groups)
                anomaly_type, match = classify_shares(
                    shares, self.taxonomy, self.min_match
                )
            feats, targets, contribs = top_contributors(
                aggregated, self._labels, self._targets, self.top_k
            )
            residual: tuple[bool, ...] = ()
            if self._recent_rows:
                flags = residual_flags(
                    np.vstack(self._recent_rows),
                    row,
                    z=self.residual_z,
                    min_history=self.residual_min_history,
                )
                if flags is not None:
                    residual = tuple(bool(flags[t]) for t in targets)
            verdict = Verdict(
                anomaly_type=anomaly_type,
                match=float(match),
                features=feats,
                targets=targets,
                contributions=contribs,
                residual=residual,
                onset=self.cusum.onset,
                windows=len(self._recent_contribs),
            )
            self.verdicts += 1
        else:
            if self.cusum.stat == 0.0 and self._recent_contribs:
                # The episode healed: stale blame must not leak into the
                # next (possibly different) attack session.
                self._recent_contribs.clear()
                self._recent_acts.clear()
            # History holds non-alarming rows only: alarm windows must
            # not poison the "recent normal" baseline the activity and
            # residual checks z-score against, and a long attack burst
            # must not become its own normal.
            self._recent_rows.append(row)
        return verdict

    # -- durability -----------------------------------------------------
    def snapshot(self) -> dict:
        """Mutable run state (the model/taxonomy knobs are construction)."""
        return {
            "cusum": self.cusum.snapshot(),
            "recent_rows": [r.tolist() for r in self._recent_rows],
            "recent_contribs": [c.tolist() for c in self._recent_contribs],
            "recent_acts": [dict(a) for a in self._recent_acts],
            "verdicts": self.verdicts,
        }

    def restore(self, state: dict) -> None:
        self.cusum.restore(state["cusum"])
        self._recent_rows.clear()
        self._recent_rows.extend(
            np.asarray(r, dtype=float) for r in state["recent_rows"]
        )
        self._recent_contribs.clear()
        self._recent_contribs.extend(
            np.asarray(c, dtype=float) for c in state["recent_contribs"]
        )
        self._recent_acts.clear()
        self._recent_acts.extend(
            {g: float(v) for g, v in a.items()}
            for a in state.get("recent_acts", [])
        )
        self.verdicts = state["verdicts"]


def fuse_verdicts(
    verdicts: list[Verdict],
    taxonomy: Mapping[str, AnomalyType] | None = None,
    top_k: int = 6,
) -> Verdict | None:
    """One fleet-level verdict from the reporting lanes' typed votes.

    Majority vote over the per-lane anomaly types (ties resolve to
    registry order, ``unknown`` losing to any typed vote); blame is the
    per-feature sum across votes; ``onset`` is the earliest lane onset —
    the fleet saw the attack no later than its first witness.
    """
    verdicts = [v for v in verdicts if v is not None]
    if not verdicts:
        return None
    taxonomy = ANOMALY_TYPES if taxonomy is None else taxonomy
    precedence = list(taxonomy) + [UNKNOWN]
    counts: dict[str, int] = {}
    for v in verdicts:
        counts[v.anomaly_type] = counts.get(v.anomaly_type, 0) + 1
    winner = min(
        counts,
        key=lambda name: (
            -counts[name],
            precedence.index(name) if name in precedence else len(precedence),
        ),
    )
    winners = [v for v in verdicts if v.anomaly_type == winner]
    blame: dict = {}
    targets: dict = {}
    for v in verdicts:
        for f, t, c in zip(v.features, v.targets, v.contributions):
            blame[f] = blame.get(f, 0.0) + c
            targets[f] = t
    ranked = sorted(blame, key=lambda f: (-blame[f], targets[f]))[:top_k]
    onsets = [v.onset for v in verdicts if v.onset is not None]
    return Verdict(
        anomaly_type=winner,
        match=float(np.mean([v.match for v in winners])),
        features=tuple(ranked),
        targets=tuple(targets[f] for f in ranked),
        contributions=tuple(float(blame[f]) for f in ranked),
        residual=(),
        onset=min(onsets) if onsets else None,
        windows=sum(v.windows for v in verdicts),
    )
