"""Temporal layer: CUSUM onset localisation + forecast-residual checks.

An alarm says "this window is anomalous"; the temporal layer says *when
the trouble started*.  Two instruments, both in DETONAR's spirit of
watching per-window statistics over time:

* :class:`ScoreCusum` — a one-sided CUSUM over the normality-score
  stream.  Scores sit above the decision threshold under normal load
  and collapse below it under attack, so the statistic accumulates
  ``(reference - drift) - score`` clipped at zero; the *onset* estimate
  is the last time the statistic left zero before the decision level
  was crossed — the standard CUSUM change-point estimator.
* :func:`residual_flags` — per-feature one-step forecast residuals.
  DETONAR fits ARIMA per feature; we use the drift-free special case (a
  trailing-window mean forecast with a standard-deviation band), which
  needs no fitting, no state beyond a short history, and no
  dependencies.  A feature whose current value leaves the ``z``-sigma
  band is *temporally* surprising, corroborating its blame share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.timeseries import ScoreSeries

__all__ = [
    "ChangePoint",
    "ScoreCusum",
    "residual_flags",
    "residual_zscores",
    "score_change_points",
]

#: CUSUM allowance (drift), as a fraction of the reference score.  The
#: statistic only accumulates score deficits below ``reference * (1 -
#: DRIFT_FRAC)``, so the ~2% of normal windows that dip just under the
#: alarm threshold drain away instead of creeping the statistic upward.
DRIFT_FRAC = 0.1

#: CUSUM decision level, as a fraction of the reference score.  Attack
#: windows typically run several tenths of the threshold *below* it, so
#: a genuine intrusion crosses within a few windows while an isolated
#: false alarm (one window, small deficit) cannot.
DECISION_FRAC = 0.5


class ScoreCusum:
    """One-sided (downward) CUSUM over a normality-score stream.

    ``update`` once per scored window, in time order.  ``onset`` is the
    change-point estimate for the episode currently in progress (None
    until the decision level has been crossed); it resets when the
    statistic drains back to zero — the paper's "self-healing" regime.
    """

    def __init__(
        self,
        reference: float,
        drift_frac: float = DRIFT_FRAC,
        decision_frac: float = DECISION_FRAC,
    ):
        if reference <= 0:
            raise ValueError(f"reference score must be positive (got {reference:g})")
        self.reference = float(reference)
        self.drift = float(drift_frac) * self.reference
        self.decision = float(decision_frac) * self.reference
        self.stat = 0.0
        self._onset_candidate: float | None = None
        self.onset: float | None = None
        self.detected_at: float | None = None

    def update(self, time: float, score: float) -> float | None:
        """Advance one window; return the current onset estimate."""
        previous = self.stat
        self.stat = max(0.0, previous + (self.reference - self.drift) - float(score))
        if self.stat == 0.0:
            self._onset_candidate = None
            self.onset = None
            self.detected_at = None
        else:
            if previous == 0.0:
                self._onset_candidate = float(time)
            if self.detected_at is None and self.stat >= self.decision:
                self.onset = self._onset_candidate
                self.detected_at = float(time)
        return self.onset

    # -- durability -----------------------------------------------------
    def snapshot(self) -> dict:
        """The statistic's mutable state (construction knobs excluded)."""
        return {
            "stat": self.stat,
            "onset_candidate": self._onset_candidate,
            "onset": self.onset,
            "detected_at": self.detected_at,
        }

    def restore(self, state: dict) -> None:
        self.stat = state["stat"]
        self._onset_candidate = state["onset_candidate"]
        self.onset = state["onset"]
        self.detected_at = state["detected_at"]


@dataclass(frozen=True)
class ChangePoint:
    """One detected score-collapse episode."""

    onset: float        #: estimated start (statistic last left zero)
    detected_at: float  #: decision-level crossing (detection delay ends)


def score_change_points(
    series: ScoreSeries,
    reference: float,
    drift_frac: float = DRIFT_FRAC,
    decision_frac: float = DECISION_FRAC,
) -> list[ChangePoint]:
    """All change points of a finished :class:`ScoreSeries`.

    Batch counterpart of :class:`ScoreCusum`: replays the curve through
    one statistic and records each episode at its decision crossing.
    """
    cusum = ScoreCusum(reference, drift_frac=drift_frac, decision_frac=decision_frac)
    episodes: list[ChangePoint] = []
    reported = False
    for t, s in zip(series.times, series.scores):
        cusum.update(float(t), float(s))
        if cusum.detected_at is None:
            reported = False
        elif not reported:
            episodes.append(
                ChangePoint(onset=float(cusum.onset), detected_at=cusum.detected_at)
            )
            reported = True
    return episodes


def residual_zscores(
    history: np.ndarray, current: np.ndarray, min_history: int = 8
) -> np.ndarray | None:
    """|z| of ``current`` against a trailing-window forecast, per feature.

    ``history`` is the ``(w, L)`` matrix of recent *pre-alarm* rows; the
    forecast is its per-feature mean, the band its standard deviation
    (floored at 1e-9 so a constant history treats any change as
    arbitrarily surprising).  Returns None with fewer than
    ``min_history`` rows — too little history to call anything
    surprising.
    """
    history = np.asarray(history, dtype=float)
    if history.ndim == 1:
        history = history[None, :]
    if len(history) < min_history:
        return None
    mean = history.mean(axis=0)
    std = np.maximum(history.std(axis=0), 1e-9)
    return np.abs((np.asarray(current, dtype=float) - mean) / std)


def residual_flags(
    history: np.ndarray,
    current: np.ndarray,
    z: float = 4.0,
    min_history: int = 8,
) -> np.ndarray | None:
    """Boolean per-feature "temporally surprising" flags (``|z| >= z``).

    The default ``z=4`` keeps the flag rare on stationary traffic
    (<0.01% per Gaussian feature) while any step change of a few
    standard deviations trips it immediately.
    """
    scores = residual_zscores(history, current, min_history=min_history)
    if scores is None:
        return None
    return scores >= float(z)
